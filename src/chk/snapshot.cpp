#include "chk/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <utility>
#include <vector>

#include "fault/status.hpp"

/// \file snapshot.cpp
/// Serialization order (one section per subsystem; unordered containers are
/// always written in sorted key order so identical machines produce
/// byte-identical payloads):
///   1. SystemConfig (incl. CostModel and FaultConfig — the blob is
///      self-describing; restore rebuilds the System from it)
///   2. Clock
///   3. StatsRegistry
///   4. EventLog (full event stream; per-type totals are recomputed)
///   5. FrameAllocators (GPU then CPU)
///   6. NvlinkC2C (degrade factors + traffic counters)
///   7. PageTables (system then GPU; v2 writes extents in VPN order, v1
///      expands them to per-page entries)
///   8. TLBs (SMMU cpu/ats, GMMU gpu/sys; LRU order front-to-back)
///   9. AddressSpace (VMAs with their real backing bytes; v2 prefixes a
///      has-data flag so non-materialized VMAs carry no byte image)
///  10. Machine epoch / current tenant
///  11. MetricsRegistry (slots in exposition order)
///  12. AttributionTable
///  13. System execution state (context, kernel seq, freed bases)
///  14. PageFaultHandler
///  15. MigrationEngine
///  16. AccessCounterEngine
///  17. ManagedEngine (LRU front-to-back, per-VMA driver state)
///  18. FaultInjector (RNG words + schedule cursors)

namespace ghum::chk {

namespace {

/// Sorted copy of an unordered map's (key, value) pairs.
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
sorted_entries(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>> v;
  v.reserve(m.size());
  for (const auto& [k, val] : m) v.emplace_back(k, val);
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return v;
}

}  // namespace

// --- SystemConfig -----------------------------------------------------------

void Snapshotter::save_config(const core::SystemConfig& cfg, Writer& w,
                              std::uint32_t version) {
  w.u64(cfg.system_page_size);
  w.u64(cfg.hbm_capacity);
  w.u64(cfg.ddr_capacity);
  w.u64(cfg.gpu_driver_baseline);
  w.boolean(cfg.access_counter_migration);
  w.u32(cfg.access_counter_threshold);
  w.u64(cfg.counter_region_bytes);
  w.i64(cfg.counter_min_interval);
  w.u32(cfg.counter_migrations_per_kernel);
  w.boolean(cfg.managed_prefetch);
  w.boolean(cfg.autonuma_balancing);
  w.i64(cfg.autonuma_scan_period);
  w.u64(cfg.cpu_tlb_entries);
  w.u64(cfg.ats_tlb_entries);
  w.u64(cfg.gpu_utlb_entries);
  w.boolean(cfg.batched_access);
  w.boolean(cfg.event_log);
  w.i64(cfg.profiler_period);
  w.boolean(cfg.profiler_enabled);
  w.boolean(cfg.link_monitor);
  w.i64(cfg.link_monitor_window);

  const core::CostModel& c = cfg.costs;
  w.i64(c.context_init);
  w.i64(c.kernel_launch);
  w.i64(c.malloc_base);
  w.i64(c.managed_alloc_base);
  w.i64(c.gpu_alloc_base);
  w.i64(c.alloc_per_page);
  w.i64(c.unmap_per_page);
  w.i64(c.unmap_base);
  w.i64(c.cpu_minor_fault);
  w.i64(c.gpu_replayable_fault);
  w.f64(c.fault_zero_bandwidth_Bps);
  w.i64(c.managed_fault_batch);
  w.i64(c.migrate_per_page);
  w.f64(c.migration_efficiency);
  w.i64(c.evict_per_block);
  w.f64(c.managed_remote_efficiency);
  w.i64(c.counter_notification);
  w.i64(c.inflight_migration_stall);
  w.i64(c.host_register_base);
  w.i64(c.host_register_per_page);
  w.i64(c.memcpy_base);
  w.f64(c.memcpy_pageable_efficiency);
  w.i64(c.gpu_free_base);
  w.i64(c.ecc_retire);
  w.i64(c.gpu_reset);
  w.f64(c.gpu_flops);
  w.f64(c.cpu_flops);

  const fault::FaultConfig& f = cfg.faults;
  w.boolean(f.enabled);
  w.u64(f.seed);
  w.f64(f.frame_alloc_denial_prob);
  w.f64(f.migration_batch_fail_prob);
  w.u32(f.migration_max_retries);
  w.i64(f.migration_retry_backoff);
  w.u64(f.link_degrade.size());
  for (const auto& wnd : f.link_degrade) {
    w.i64(wnd.start);
    w.i64(wnd.duration);
    w.f64(wnd.bandwidth_factor);
    w.f64(wnd.latency_factor);
  }
  w.u64(f.ecc_events.size());
  for (const auto& e : f.ecc_events) {
    w.i64(e.time);
    w.u64(e.bytes);
  }
  w.u64(f.gpu_resets.size());
  for (const auto& r : f.gpu_resets) w.i64(r.time);
  w.u64(f.ecc_retirement_budget);

  w.str(cfg.name);

  // Fields introduced with format version 2 append after the v1 tail so a
  // version-1 payload is a strict prefix of the config section.
  if (version >= 2) {
    w.boolean(cfg.materialize_backing);
  }
}

core::SystemConfig Snapshotter::load_config(Reader& r, std::uint32_t version) {
  core::SystemConfig cfg;
  cfg.system_page_size = r.u64();
  cfg.hbm_capacity = r.u64();
  cfg.ddr_capacity = r.u64();
  cfg.gpu_driver_baseline = r.u64();
  cfg.access_counter_migration = r.boolean();
  cfg.access_counter_threshold = r.u32();
  cfg.counter_region_bytes = r.u64();
  cfg.counter_min_interval = r.i64();
  cfg.counter_migrations_per_kernel = r.u32();
  cfg.managed_prefetch = r.boolean();
  cfg.autonuma_balancing = r.boolean();
  cfg.autonuma_scan_period = r.i64();
  cfg.cpu_tlb_entries = static_cast<std::size_t>(r.u64());
  cfg.ats_tlb_entries = static_cast<std::size_t>(r.u64());
  cfg.gpu_utlb_entries = static_cast<std::size_t>(r.u64());
  cfg.batched_access = r.boolean();
  cfg.event_log = r.boolean();
  cfg.profiler_period = r.i64();
  cfg.profiler_enabled = r.boolean();
  cfg.link_monitor = r.boolean();
  cfg.link_monitor_window = r.i64();

  core::CostModel& c = cfg.costs;
  c.context_init = r.i64();
  c.kernel_launch = r.i64();
  c.malloc_base = r.i64();
  c.managed_alloc_base = r.i64();
  c.gpu_alloc_base = r.i64();
  c.alloc_per_page = r.i64();
  c.unmap_per_page = r.i64();
  c.unmap_base = r.i64();
  c.cpu_minor_fault = r.i64();
  c.gpu_replayable_fault = r.i64();
  c.fault_zero_bandwidth_Bps = r.f64();
  c.managed_fault_batch = r.i64();
  c.migrate_per_page = r.i64();
  c.migration_efficiency = r.f64();
  c.evict_per_block = r.i64();
  c.managed_remote_efficiency = r.f64();
  c.counter_notification = r.i64();
  c.inflight_migration_stall = r.i64();
  c.host_register_base = r.i64();
  c.host_register_per_page = r.i64();
  c.memcpy_base = r.i64();
  c.memcpy_pageable_efficiency = r.f64();
  c.gpu_free_base = r.i64();
  c.ecc_retire = r.i64();
  c.gpu_reset = r.i64();
  c.gpu_flops = r.f64();
  c.cpu_flops = r.f64();

  fault::FaultConfig& f = cfg.faults;
  f.enabled = r.boolean();
  f.seed = r.u64();
  f.frame_alloc_denial_prob = r.f64();
  f.migration_batch_fail_prob = r.f64();
  f.migration_max_retries = r.u32();
  f.migration_retry_backoff = r.i64();
  f.link_degrade.resize(r.u64());
  for (auto& wnd : f.link_degrade) {
    wnd.start = r.i64();
    wnd.duration = r.i64();
    wnd.bandwidth_factor = r.f64();
    wnd.latency_factor = r.f64();
  }
  f.ecc_events.resize(r.u64());
  for (auto& e : f.ecc_events) {
    e.time = r.i64();
    e.bytes = r.u64();
  }
  f.gpu_resets.resize(r.u64());
  for (auto& gr : f.gpu_resets) gr.time = r.i64();
  f.ecc_retirement_budget = r.u64();

  cfg.name = r.str();
  if (version >= 2) {
    cfg.materialize_backing = r.boolean();
  }
  // Version 1 predates non-materialized backing; its default (true) matches
  // every machine a v1 blob can describe.
  return cfg;
}

// --- machine state ----------------------------------------------------------

void Snapshotter::save_state(core::System& sys, Writer& w,
                             std::uint32_t version) {
  core::Machine& m = sys.m_;

  // [2] Clock.
  w.i64(m.clock_.now_);

  // [3] Stats (std::map: already in sorted order).
  w.u64(m.stats_.counters_.size());
  for (const auto& [name, v] : m.stats_.counters_) {
    w.str(name);
    w.u64(v);
  }

  // [4] EventLog.
  const sim::EventLog& el = m.events_;
  w.boolean(el.enabled_);
  w.u32(el.tenant_);
  w.u32(el.span_);
  w.u32(el.span_seq_);
  w.u64(el.events_.size());
  for (const sim::Event& e : el.events_) {
    w.i64(e.time);
    w.u8(static_cast<std::uint8_t>(e.type));
    w.u64(e.va);
    w.u64(e.bytes);
    w.u32(e.aux);
    w.u32(e.tenant);
    w.u32(e.span);
  }

  // [5] Frame allocators.
  const auto save_fa = [&w](const mem::FrameAllocator& fa) {
    w.u64(fa.capacity_);
    w.u64(fa.used_);
    w.u64(fa.baseline_);
    w.u64(fa.retired_);
    w.u64(fa.total_allocated_);
    w.u64(fa.peak_used_);
  };
  save_fa(m.gpu_fa_);
  save_fa(m.cpu_fa_);

  // [6] NVLink-C2C.
  w.f64(m.c2c_.bw_factor_);
  w.f64(m.c2c_.lat_factor_);
  w.u64(m.c2c_.bytes_[0]);
  w.u64(m.c2c_.bytes_[1]);
  w.u64(m.c2c_.atomics_);

  // [7] Page tables. Version 2 writes the extent representation directly
  // (runs are already ordered and canonical — maximal, attribute-equal);
  // version 1 expands every run back to per-page entries, which is the
  // legacy encoding byte for byte.
  const auto save_pt = [&w, version](const pagetable::PageTable& pt) {
    if (version >= 2) {
      w.u64(pt.runs_.size());
      for (const auto& [first_vpn, run] : pt.runs_) {
        w.u64(first_vpn);
        w.u64(run.pages);
        w.u8(static_cast<std::uint8_t>(run.pte.node));
        w.boolean(run.pte.writable);
        w.u32(run.pte.numa_generation);
      }
    } else {
      w.u64(pt.total_pages_);
      for (const auto& [first_vpn, run] : pt.runs_) {
        for (std::uint64_t p = 0; p < run.pages; ++p) {
          w.u64(first_vpn + p);
          w.u8(static_cast<std::uint8_t>(run.pte.node));
          w.boolean(run.pte.writable);
          w.u32(run.pte.numa_generation);
        }
      }
    }
  };
  save_pt(m.system_pt_);
  save_pt(m.gpu_pt_);

  // [8] TLBs (LRU front-to-back = most to least recent).
  const auto save_tlb = [&w](const pagetable::Tlb& tlb) {
    w.u64(tlb.hits_);
    w.u64(tlb.misses_);
    w.u64(tlb.lru_.size());
    for (const auto& entry : tlb.lru_) {
      w.u64(entry.vpn);
      w.u8(static_cast<std::uint8_t>(entry.node));
    }
  };
  save_tlb(m.smmu_.cpu_tlb());
  save_tlb(m.smmu_.ats_tlb());
  save_tlb(m.gmmu_.utlb_gpu());
  save_tlb(m.gmmu_.utlb_sys());

  // [9] Address space, including every VMA's real backing bytes.
  const os::AddressSpace& as = m.as_;
  w.u64(as.next_va_);
  w.u64(as.rss_);
  w.u32(as.current_tenant_);
  w.u64(as.vmas_.size());
  for (const auto& [base, vma] : as.vmas_) {
    w.u64(vma.base);
    w.u64(vma.size);
    w.u8(static_cast<std::uint8_t>(vma.kind));
    w.str(vma.label);
    w.boolean(vma.host_registered);
    w.u32(vma.tenant);
    w.u8(vma.preferred_location
             ? static_cast<std::uint8_t>(*vma.preferred_location) + 1
             : 0);
    w.boolean(vma.read_mostly);
    w.boolean(vma.poisoned);
    w.u64(vma.resident_cpu_bytes);
    w.u64(vma.resident_gpu_bytes);
    if (version >= 2) {
      // Non-materialized backing (full-scale runs) has no bytes to carry.
      const bool has_data = vma.data != nullptr;
      w.boolean(has_data);
      if (has_data) {
        w.bytes(reinterpret_cast<const std::uint8_t*>(vma.data.get()),
                vma.size);
      }
    } else {
      if (vma.data == nullptr) {
        throw StatusError{Status::kErrorInvalidValue,
                          "checkpoint: format version 1 cannot describe "
                          "non-materialized VMA backing"};
      }
      w.bytes(reinterpret_cast<const std::uint8_t*>(vma.data.get()),
              vma.size);
    }
  }

  // [10] Machine epoch / tenant.
  w.u64(m.epoch_);
  w.u32(m.tenant_);

  // [11] Metrics registry (slots_ map iterates in exposition order).
  const obs::MetricsRegistry& reg = m.obs_;
  w.u64(reg.slots_.size());
  for (const auto& [key, slot] : reg.slots_) {
    w.u8(static_cast<std::uint8_t>(slot.kind));
    w.str(slot.name);
    w.u64(slot.labels.size());
    for (const obs::Label& l : slot.labels) {
      w.str(l.key);
      w.str(l.value);
    }
    switch (slot.kind) {
      case obs::MetricsRegistry::Kind::kCounter:
        w.u64(reg.counters_[slot.index].value_);
        break;
      case obs::MetricsRegistry::Kind::kGauge:
        w.i64(reg.gauges_[slot.index].value_);
        break;
      case obs::MetricsRegistry::Kind::kHistogram: {
        const obs::Histogram& h = reg.histograms_[slot.index];
        for (std::uint64_t b : h.buckets_) w.u64(b);
        w.u64(h.count_);
        w.u64(h.sum_);
        w.u64(h.min_);
        w.u64(h.max_);
        break;
      }
    }
  }

  // [12] Attribution.
  const tenant::AttributionTable& at = m.attribution_;
  w.u64(at.usage_.size());
  for (const tenant::TenantUsage& u : at.usage_) {
    w.i64(u.resident_cpu_bytes);
    w.i64(u.resident_gpu_bytes);
    w.u64(u.peak_gpu_bytes);
    w.u64(u.c2c_h2d_bytes);
    w.u64(u.c2c_d2h_bytes);
    w.u64(u.cpu_faults);
    w.u64(u.gpu_faults);
    w.u64(u.migrated_h2d_bytes);
    w.u64(u.migrated_d2h_bytes);
    w.u64(u.evictions_suffered);
    w.u64(u.evicted_bytes_suffered);
    w.u64(u.evictions_caused);
  }
  w.u64(at.matrix_.size());
  for (const auto& [pair, cell] : at.matrix_) {
    w.u32(pair.first);
    w.u32(pair.second);
    w.u64(cell.count);
    w.u64(cell.bytes);
  }
  w.u64(at.cross_tenant_evictions_);
  w.u64(at.cross_tenant_evicted_bytes_);

  // [13] System execution state. in_kernel_/in_phase_ are rejected by
  // snapshot(), so phase-local fields need no section.
  w.boolean(sys.ctx_init_);
  w.i64(sys.ctx_charged_);
  w.u64(sys.kernel_seq_);
  std::vector<std::uint64_t> freed{sys.freed_bases_.begin(),
                                   sys.freed_bases_.end()};
  std::sort(freed.begin(), freed.end());
  w.u64(freed.size());
  for (std::uint64_t b : freed) w.u64(b);

  // [14] Page-fault handler.
  w.u64(sys.pf_.fault_count_[0]);
  w.u64(sys.pf_.fault_count_[1]);

  // [15] Migration engine.
  w.u64(sys.mig_.h2d_bytes_);
  w.u64(sys.mig_.d2h_bytes_);

  // [16] Access-counter engine.
  const driver::AccessCounterEngine& ac = sys.ac_;
  const auto save_counts =
      [&w](const std::unordered_map<std::uint64_t, std::uint64_t>& counts) {
        const auto entries = sorted_entries(counts);
        w.u64(entries.size());
        for (const auto& [region, count] : entries) {
          w.u64(region);
          w.u64(count);
        }
      };
  save_counts(ac.gpu_counts_);
  save_counts(ac.cpu_counts_);
  w.i64(ac.next_notification_allowed_);
  w.u64(ac.current_kernel_);
  w.u32(ac.fired_this_kernel_);
  w.u64(ac.notifications_);
  w.u64(ac.h2d_);
  w.u64(ac.d2h_);

  // [17] Managed engine. The LRU is written front (MRU) to back with each
  // block's info so restore rebuilds list and map in one pass.
  const driver::ManagedEngine& me = sys.managed_;
  w.u64(me.lru_.size());
  for (std::uint64_t block : me.lru_) {
    const auto& info = me.blocks_.at(block);
    w.u64(block);
    w.u64(info.vma_base);
    w.u64(info.last_kernel);
  }
  {
    const auto entries = sorted_entries(me.vma_state_);
    w.u64(entries.size());
    for (const auto& [base, vs] : entries) {
      w.u64(base);
      w.u64(vs.evicted_bytes);
      w.u64(vs.migrated_blocks);
      w.boolean(vs.remote_mode);
    }
  }
  w.u64(me.prefetch_protected_.size());
  for (std::uint64_t b : me.prefetch_protected_) w.u64(b);
  w.u64(me.replicas_.size());
  for (std::uint64_t b : me.replicas_) w.u64(b);
  w.u64(me.evictions_);
  w.u64(me.gpu_faults_);
  w.u64(me.cpu_faults_);

  // [18] Fault injector. Schedules are rebuilt from the config; only the
  // RNG words and consumption cursors travel.
  const fault::FaultInjector& fi = sys.fi_;
  for (std::uint64_t s : fi.rng_.s_) w.u64(s);
  w.i64(fi.suppress_);
  w.u64(fi.next_window_);
  w.i64(fi.active_window_);
  w.u64(fi.next_ecc_);
  w.u64(fi.next_reset_);
  w.u64(fi.denials_);
}

void Snapshotter::load_state(core::System& sys, Reader& r,
                             std::uint32_t version, core::System* donor) {
  core::Machine& m = sys.m_;

  // [2] Clock: set directly — observers (profiler, link monitor, fault
  // injector windows) must not fire, the restored sections already contain
  // everything they would have done.
  m.clock_.now_ = r.i64();

  // [3] Stats.
  m.stats_.counters_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    std::string name = r.str();
    m.stats_.counters_[std::move(name)] = r.u64();
  }

  // [4] EventLog (per-type totals recomputed from the stream).
  sim::EventLog& el = m.events_;
  el.enabled_ = r.boolean();
  el.tenant_ = r.u32();
  el.span_ = r.u32();
  el.span_seq_ = r.u32();
  el.events_.clear();
  el.counts_.fill(0);
  el.bytes_.fill(0);
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    sim::Event e;
    e.time = r.i64();
    e.type = static_cast<sim::EventType>(r.u8());
    e.va = r.u64();
    e.bytes = r.u64();
    e.aux = r.u32();
    e.tenant = r.u32();
    e.span = r.u32();
    const auto t = static_cast<std::size_t>(e.type);
    ++el.counts_[t];
    el.bytes_[t] += e.bytes;
    el.events_.push_back(e);
  }

  // [5] Frame allocators.
  const auto load_fa = [&r](mem::FrameAllocator& fa) {
    fa.capacity_ = r.u64();
    fa.used_ = r.u64();
    fa.baseline_ = r.u64();
    fa.retired_ = r.u64();
    fa.total_allocated_ = r.u64();
    fa.peak_used_ = r.u64();
  };
  load_fa(m.gpu_fa_);
  load_fa(m.cpu_fa_);

  // [6] NVLink-C2C.
  m.c2c_.bw_factor_ = r.f64();
  m.c2c_.lat_factor_ = r.f64();
  m.c2c_.bytes_[0] = r.u64();
  m.c2c_.bytes_[1] = r.u64();
  m.c2c_.atomics_ = r.u64();

  // [7] Page tables. Either encoding lands in the extent map through
  // insert_run, which coalesces — a version-1 per-page stream (entries
  // sorted by VPN, so adjacent pages arrive in order) collapses back into
  // the same canonical runs the machine held when it was saved.
  const auto load_pt = [&r, version](pagetable::PageTable& pt) {
    pt.clear();
    if (version >= 2) {
      for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
        const std::uint64_t first_vpn = r.u64();
        const std::uint64_t pages = r.u64();
        pagetable::Pte pte;
        pte.node = static_cast<mem::Node>(r.u8());
        pte.writable = r.boolean();
        pte.numa_generation = r.u32();
        pt.insert_run(first_vpn, pages, pte);
      }
    } else {
      for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
        const std::uint64_t vpn = r.u64();
        pagetable::Pte pte;
        pte.node = static_cast<mem::Node>(r.u8());
        pte.writable = r.boolean();
        pte.numa_generation = r.u32();
        pt.insert_run(vpn, 1, pte);
      }
    }
  };
  load_pt(m.system_pt_);
  load_pt(m.gpu_pt_);

  // [8] TLBs. hits_/misses_ are set directly — the bound registry counters
  // are restored with the registry section, so going through the public
  // interface would double count.
  const auto load_tlb = [&r](pagetable::Tlb& tlb) {
    tlb.hits_ = r.u64();
    tlb.misses_ = r.u64();
    tlb.lru_.clear();
    tlb.map_.clear();
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
      const std::uint64_t vpn = r.u64();
      const auto node = static_cast<mem::Node>(r.u8());
      tlb.lru_.push_back({vpn, node});
      tlb.map_[vpn] = std::prev(tlb.lru_.end());
    }
  };
  load_tlb(m.smmu_.cpu_tlb());
  load_tlb(m.smmu_.ats_tlb());
  load_tlb(m.gmmu_.utlb_gpu());
  load_tlb(m.gmmu_.utlb_sys());

  // [9] Address space. A matching donor VMA hands over its backing array
  // (host pointers held by live app coroutines stay valid); the blob's
  // byte image is then copied in unconditionally, so the contents reflect
  // the checkpoint even when the donor ran past it.
  os::AddressSpace& as = m.as_;
  as.next_va_ = r.u64();
  as.rss_ = r.u64();
  as.current_tenant_ = r.u32();
  as.vmas_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    os::Vma v;
    v.base = r.u64();
    v.size = r.u64();
    v.kind = static_cast<os::AllocKind>(r.u8());
    v.label = r.str();
    v.host_registered = r.boolean();
    v.tenant = r.u32();
    const std::uint8_t pref = r.u8();
    if (pref != 0) v.preferred_location = static_cast<mem::Node>(pref - 1);
    v.read_mostly = r.boolean();
    v.poisoned = r.boolean();
    v.resident_cpu_bytes = r.u64();
    v.resident_gpu_bytes = r.u64();
    const bool has_data = version >= 2 ? r.boolean() : true;
    if (has_data) {
      if (donor != nullptr) {
        os::Vma* dv = donor->m_.as_.find_exact(v.base);
        if (dv != nullptr && dv->size == v.size && dv->data != nullptr) {
          v.data = std::move(dv->data);
        }
      }
      if (v.data == nullptr) v.data = std::make_unique<std::byte[]>(v.size);
      r.bytes_into(reinterpret_cast<std::uint8_t*>(v.data.get()), v.size);
    }
    const std::uint64_t base = v.base;
    as.vmas_.emplace(base, std::move(v));
  }

  // [10] Machine epoch / tenant.
  m.epoch_ = r.u64();
  m.tenant_ = r.u32();

  // [11] Metrics registry: find-or-create by (name, labels) — the fresh
  // Machine constructor already registered the memsys families, this
  // overwrites their values and creates anything beyond them.
  obs::MetricsRegistry& reg = m.obs_;
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const auto kind = static_cast<obs::MetricsRegistry::Kind>(r.u8());
    std::string name = r.str();
    std::vector<obs::Label> labels(r.u64());
    for (obs::Label& l : labels) {
      l.key = r.str();
      l.value = r.str();
    }
    switch (kind) {
      case obs::MetricsRegistry::Kind::kCounter:
        reg.counter(name, labels).value_ = r.u64();
        break;
      case obs::MetricsRegistry::Kind::kGauge:
        reg.gauge(name, labels).value_ = r.i64();
        break;
      case obs::MetricsRegistry::Kind::kHistogram: {
        obs::Histogram& h = reg.histogram(name, labels);
        for (std::uint64_t& b : h.buckets_) b = r.u64();
        h.count_ = r.u64();
        h.sum_ = r.u64();
        h.min_ = r.u64();
        h.max_ = r.u64();
        break;
      }
    }
  }

  // [12] Attribution.
  tenant::AttributionTable& at = m.attribution_;
  at.usage_.assign(r.u64(), {});
  for (tenant::TenantUsage& u : at.usage_) {
    u.resident_cpu_bytes = r.i64();
    u.resident_gpu_bytes = r.i64();
    u.peak_gpu_bytes = r.u64();
    u.c2c_h2d_bytes = r.u64();
    u.c2c_d2h_bytes = r.u64();
    u.cpu_faults = r.u64();
    u.gpu_faults = r.u64();
    u.migrated_h2d_bytes = r.u64();
    u.migrated_d2h_bytes = r.u64();
    u.evictions_suffered = r.u64();
    u.evicted_bytes_suffered = r.u64();
    u.evictions_caused = r.u64();
  }
  at.matrix_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const tenant::TenantId perp = r.u32();
    const tenant::TenantId victim = r.u32();
    tenant::EvictionCell cell;
    cell.count = r.u64();
    cell.bytes = r.u64();
    at.matrix_[{perp, victim}] = cell;
  }
  at.cross_tenant_evictions_ = r.u64();
  at.cross_tenant_evicted_bytes_ = r.u64();

  // [13] System execution state.
  sys.ctx_init_ = r.boolean();
  sys.ctx_charged_ = r.i64();
  sys.in_kernel_ = false;
  sys.in_phase_ = false;
  sys.kernel_seq_ = r.u64();
  sys.freed_bases_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    sys.freed_bases_.insert(r.u64());
  }

  // [14] Page-fault handler.
  sys.pf_.fault_count_[0] = r.u64();
  sys.pf_.fault_count_[1] = r.u64();

  // [15] Migration engine.
  sys.mig_.h2d_bytes_ = r.u64();
  sys.mig_.d2h_bytes_ = r.u64();

  // [16] Access-counter engine.
  driver::AccessCounterEngine& ac = sys.ac_;
  const auto load_counts =
      [&r](std::unordered_map<std::uint64_t, std::uint64_t>& counts) {
        counts.clear();
        for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
          const std::uint64_t region = r.u64();
          counts[region] = r.u64();
        }
      };
  load_counts(ac.gpu_counts_);
  load_counts(ac.cpu_counts_);
  ac.next_notification_allowed_ = r.i64();
  ac.current_kernel_ = r.u64();
  ac.fired_this_kernel_ = r.u32();
  ac.notifications_ = r.u64();
  ac.h2d_ = r.u64();
  ac.d2h_ = r.u64();

  // [17] Managed engine.
  driver::ManagedEngine& me = sys.managed_;
  me.lru_.clear();
  me.blocks_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::uint64_t block = r.u64();
    me.lru_.push_back(block);
    auto& info = me.blocks_[block];
    info.lru_it = std::prev(me.lru_.end());
    info.vma_base = r.u64();
    info.last_kernel = r.u64();
  }
  me.vma_state_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::uint64_t base = r.u64();
    auto& vs = me.vma_state_[base];
    vs.evicted_bytes = r.u64();
    vs.migrated_blocks = r.u64();
    vs.remote_mode = r.boolean();
  }
  me.prefetch_protected_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    me.prefetch_protected_.insert(r.u64());
  }
  me.replicas_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    me.replicas_.insert(r.u64());
  }
  me.evictions_ = r.u64();
  me.gpu_faults_ = r.u64();
  me.cpu_faults_ = r.u64();

  // [18] Fault injector. With a donor, the ECC/reset cursors never rewind
  // below the donor's: a scheduled fault the crashed attempt already
  // consumed must not fire again on the replay, or recovery would crash
  // deterministically forever.
  fault::FaultInjector& fi = sys.fi_;
  for (std::uint64_t& s : fi.rng_.s_) s = r.u64();
  fi.suppress_ = static_cast<int>(r.i64());
  fi.next_window_ = r.u64();
  fi.active_window_ = static_cast<std::ptrdiff_t>(r.i64());
  fi.next_ecc_ = r.u64();
  fi.next_reset_ = r.u64();
  fi.denials_ = r.u64();
  if (donor != nullptr) {
    fi.next_ecc_ = std::max(fi.next_ecc_, donor->fi_.next_ecc_);
    fi.next_reset_ = std::max(fi.next_reset_, donor->fi_.next_reset_);
  }

  // [19] Link monitor. Its window series is observation-only and restarts
  // empty, but the monitor was started at construction (time 0, zero byte
  // baselines) and the clock/C2C totals were restored without an advance:
  // realign it so the first post-restore window opens at the cut instead
  // of swallowing the entire pre-checkpoint transfer history.
  if (sys.link_monitor().running()) sys.link_monitor().rebase();
}

// --- public API -------------------------------------------------------------

Blob Snapshotter::snapshot(core::System& sys, std::uint32_t version) {
  if (sys.in_kernel_ || sys.in_phase_) {
    throw StatusError{Status::kErrorInvalidValue,
                             "snapshot inside an open kernel/phase"};
  }
  if (version < kMinFormatVersion || version > kFormatVersion) {
    throw StatusError{Status::kErrorInvalidValue,
                             "snapshot: unwritable format version"};
  }
  Writer payload;
  save_config(sys.config(), payload, version);
  save_state(sys, payload, version);
  const std::vector<std::uint8_t>& body = payload.data();

  Writer out;
  out.u64(kMagic);
  out.u32(version);
  out.u64(fnv1a(body.data(), body.size()));
  out.u64(body.size());
  Blob blob = out.take();
  blob.insert(blob.end(), body.begin(), body.end());
  return blob;
}

std::unique_ptr<core::System> Snapshotter::restore(const Blob& blob,
                                                   core::System* donor) {
  Reader header{blob.data(), blob.size()};
  try {
    if (header.u64() != kMagic) {
      throw StatusError{Status::kErrorInvalidValue,
                               "checkpoint: bad magic"};
    }
    const std::uint32_t version = header.u32();
    if (version < kMinFormatVersion || version > kFormatVersion) {
      throw StatusError{Status::kErrorInvalidValue,
                               "checkpoint: unsupported format version"};
    }
    const std::uint64_t digest = header.u64();
    const std::uint64_t size = header.u64();
    if (size != header.remaining()) {
      throw StatusError{Status::kErrorInvalidValue,
                               "checkpoint: payload size mismatch"};
    }
    const std::uint8_t* body = blob.data() + (blob.size() - size);
    if (fnv1a(body, size) != digest) {
      throw StatusError{Status::kErrorInvalidValue,
                               "checkpoint: payload digest mismatch"};
    }
    Reader r{body, static_cast<std::size_t>(size)};
    auto sys = std::make_unique<core::System>(load_config(r, version));
    load_state(*sys, r, version, donor);
    return sys;
  } catch (const std::out_of_range&) {
    throw StatusError{Status::kErrorInvalidValue,
                             "checkpoint: truncated or corrupt blob"};
  }
}

std::uint64_t Snapshotter::state_digest(core::System& sys) {
  if (sys.in_kernel_ || sys.in_phase_) {
    throw StatusError{Status::kErrorInvalidValue,
                             "state_digest inside an open kernel/phase"};
  }
  Writer payload;
  save_config(sys.config(), payload, kFormatVersion);
  save_state(sys, payload, kFormatVersion);
  return fnv1a(payload.data().data(), payload.data().size());
}

std::uint64_t Snapshotter::blob_digest(const Blob& blob) {
  Reader header{blob.data(), blob.size()};
  try {
    if (header.u64() != kMagic) {
      throw StatusError{Status::kErrorInvalidValue,
                               "checkpoint: bad magic"};
    }
    (void)header.u32();
    return header.u64();
  } catch (const std::out_of_range&) {
    throw StatusError{Status::kErrorInvalidValue,
                             "checkpoint: truncated header"};
  }
}

bool Snapshotter::verify(const Blob& blob) noexcept {
  Reader header{blob.data(), blob.size()};
  try {
    if (header.u64() != kMagic) return false;
    const std::uint32_t version = header.u32();
    if (version < kMinFormatVersion || version > kFormatVersion) return false;
    const std::uint64_t digest = header.u64();
    const std::uint64_t size = header.u64();
    if (size != header.remaining()) return false;
    const std::uint8_t* body = blob.data() + (blob.size() - size);
    return fnv1a(body, size) == digest;
  } catch (const std::out_of_range&) {
    return false;
  }
}

}  // namespace ghum::chk
