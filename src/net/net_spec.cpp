#include "net/net_spec.hpp"

#include <cmath>

namespace ghum::net {

Status NetSpec::validate() const noexcept {
  const double bws[] = {wire_bandwidth_Bps, bcopy_bandwidth_Bps,
                        gdr_get_bandwidth_Bps, gdr_put_bandwidth_Bps,
                        distance_bandwidth_Bps};
  for (const double bw : bws) {
    if (!(bw > 0.0) || !std::isfinite(bw)) return Status::kErrorNetConfig;
  }
  const sim::Picos lats[] = {wire_latency,  proto_single,  proto_multi,
                             rndv_offload,  rndv_rtr,      rndv_rts,
                             proto_sw,      rkey_ptr,      send_bcopy,
                             send_cqe,      send_db,       send_wqe_fetch,
                             send_wqe_post, am_short,      am_bcopy,
                             rcache_overhead, gdr_latency, gdr_rcache_overhead};
  for (const sim::Picos t : lats) {
    if (t < 0) return Status::kErrorNetConfig;
  }
  // Thresholds are a policy axis: either fully automatic (both zero) or
  // fully explicit and ordered. A partial or inverted ladder would make
  // some message size select no protocol (or two).
  if ((bcopy_max == 0) != (zcopy_max == 0)) return Status::kErrorNetConfig;
  if (bcopy_max != 0 &&
      (eager_short_max > bcopy_max || bcopy_max > zcopy_max)) {
    return Status::kErrorNetConfig;
  }
  return Status::kSuccess;
}

}  // namespace ghum::net
