#pragma once

#include <cstdint>
#include <string_view>

#include "fault/status.hpp"
#include "sim/time.hpp"

/// \file net_spec.hpp
/// net::NetSpec — the inter-superchip network cost model, in the style of
/// UCX's performance estimator (DESIGN.md Section 12). Every constant is
/// seeded from the real `ucx.conf` tuning shipped for Grace Hopper and
/// Fujitsu ARM systems (SNIPPETS.md): per-protocol overheads
/// (UCX_PROTO_OVERHEAD), the IB send pipeline (UCX_IB_SEND_OVERHEAD),
/// shared-memory active-message overheads (UCX_MM_SEND/RECV_OVERHEAD),
/// bounce-copy bandwidth (UCX_BCOPY_BW), gdrcopy staging for cuda-managed
/// memory (UCX_GDR_COPY_LAT/BW/RCACHE_OVERHEAD), registration-cache
/// overhead (UCX_RCACHE_OVERHEAD) and the system-memory distance bandwidth
/// (UCX_DISTANCE_BW sys:). A message is charged one of four protocols —
/// eager short, eager bcopy, zcopy, rendezvous — selected either by
/// modeled cost (the UCX estimator's rule) or by explicitly configured
/// size thresholds (the tunable policy axes the SVM design-space catalog,
/// PAPERS.md arXiv 2405.06811, motivates exposing).

namespace ghum::net {

/// The UCX protocol ladder, cheapest-fixed-cost first. Eager protocols
/// deliver through receive bounce buffers (bcopy pays a copy on both
/// sides, zcopy only on the receiver); rendezvous pays an RTS/RTR
/// handshake round trip to earn a true zero-copy bulk transfer.
enum class Protocol : std::uint8_t {
  kEagerShort = 0,  ///< payload inlined in the active message
  kEagerBcopy = 1,  ///< copy-in, send, copy-out through bounce buffers
  kZcopy = 2,       ///< registered send buffer, receive-side copy-out
  kRendezvous = 3,  ///< rts/rtr handshake, zero-copy both sides
};
inline constexpr std::size_t kProtocols = 4;

[[nodiscard]] constexpr std::string_view to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::kEagerShort: return "eager-short";
    case Protocol::kEagerBcopy: return "eager-bcopy";
    case Protocol::kZcopy: return "zcopy";
    case Protocol::kRendezvous: return "rendezvous";
  }
  return "?";
}

/// Where the message's payload lives. Host memory moves straight through
/// the NIC; cuda-managed memory is staged through gdrcopy (eager) or
/// GPUDirect-registered with rkey_ptr + gdrcopy rcache costs (zcopy,
/// rendezvous), exactly the distinction the Grace Hopper ucx.conf section
/// encodes (UCX_REG_NONBLOCK_MEM_TYPES=host,cuda-managed).
enum class MemType : std::uint8_t {
  kHost = 0,
  kCudaManaged = 1,
};

[[nodiscard]] constexpr std::string_view to_string(MemType m) noexcept {
  switch (m) {
    case MemType::kHost: return "host";
    case MemType::kCudaManaged: return "cuda-managed";
  }
  return "?";
}

struct NetSpec {
  // --- wire -----------------------------------------------------------------
  /// Inter-node fabric serialization bandwidth (the conservative 25 GB/s
  /// the fleet layer previously used as its flat transfer model).
  double wire_bandwidth_Bps = 25e9;
  /// One-way propagation + switch latency per message.
  sim::Picos wire_latency = sim::microseconds(2);

  // --- per-protocol overheads (UCX_PROTO_OVERHEAD) --------------------------
  sim::Picos proto_single = sim::nanoseconds(5);    ///< single:5ns
  sim::Picos proto_multi = sim::nanoseconds(10);    ///< multi:10ns
  sim::Picos rndv_offload = sim::nanoseconds(40);   ///< rndv_offload:40ns
  sim::Picos rndv_rtr = sim::nanoseconds(40);       ///< rndv_rtr:40ns
  sim::Picos rndv_rts = sim::nanoseconds(275);      ///< rndv_rts:275ns
  sim::Picos proto_sw = sim::nanoseconds(40);       ///< sw:40ns
  sim::Picos rkey_ptr = sim::nanoseconds(500);      ///< rkey_ptr:500ns

  // --- IB send pipeline (UCX_IB_SEND_OVERHEAD) ------------------------------
  sim::Picos send_bcopy = sim::nanoseconds(5);      ///< bcopy:5ns
  sim::Picos send_cqe = sim::nanoseconds(50);       ///< cqe:50ns
  sim::Picos send_db = sim::nanoseconds(400);       ///< db:400ns
  sim::Picos send_wqe_fetch = sim::nanoseconds(350);///< wqe_fetch:350ns
  sim::Picos send_wqe_post = sim::nanoseconds(100); ///< wqe_post:100ns

  // --- active-message overheads (UCX_MM_SEND/RECV_OVERHEAD) -----------------
  sim::Picos am_short = sim::nanoseconds(40);       ///< am_short:40ns
  sim::Picos am_bcopy = sim::nanoseconds(220);      ///< am_bcopy:220ns

  // --- copies & registration ------------------------------------------------
  double bcopy_bandwidth_Bps = 12e9;                ///< UCX_BCOPY_BW=12000MBs
  sim::Picos rcache_overhead = sim::nanoseconds(360);  ///< UCX_RCACHE_OVERHEAD

  // --- gdrcopy staging for cuda-managed payloads (UCX_GDR_COPY_*) -----------
  double gdr_get_bandwidth_Bps = 30e9;              ///< get_dedicated:30GBs
  double gdr_put_bandwidth_Bps = 30e9;              ///< put_dedicated:30GBs
  sim::Picos gdr_latency = sim::nanoseconds(30);    ///< UCX_GDR_COPY_LAT=30ns
  sim::Picos gdr_rcache_overhead = sim::nanoseconds(170);

  // --- distance bandwidth (UCX_DISTANCE_BW sys:16500MBs) --------------------
  /// NIC-to-system-memory path bandwidth; caps the eager-short payload
  /// drain and the host side of bounce copies.
  double distance_bandwidth_Bps = 16.5e9;

  // --- protocol selection policy --------------------------------------------
  /// Largest payload the short active message can inline. Messages above
  /// it are never eager-short regardless of modeled cost.
  std::uint64_t eager_short_max = 208;
  /// Explicit crossover thresholds (bytes): <= bcopy_max is eager-bcopy,
  /// <= zcopy_max is zcopy, above is rendezvous. Both zero (the default)
  /// selects the cheapest protocol by modeled cost, the UCX estimator's
  /// rule; setting them is the tunable-policy axis. Either both are zero
  /// or both are nonzero and ordered (eager_short_max <= bcopy_max <=
  /// zcopy_max) — anything else fails validation.
  std::uint64_t bcopy_max = 0;
  std::uint64_t zcopy_max = 0;

  /// kSuccess, or kErrorNetConfig naming the first malformed field class:
  /// zero/negative/non-finite bandwidths, negative latencies or overheads,
  /// or unordered/partial protocol thresholds.
  [[nodiscard]] Status validate() const noexcept;
};

}  // namespace ghum::net
