#include "net/fabric.hpp"

#include <algorithm>
#include <string>

namespace ghum::net {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a over the message descriptor — the model's payload checksum,
/// computed at the sender and recomputed (verified) at the receiver. A
/// link-level corruption event perturbs the delivered value, so the
/// receiver's comparison genuinely catches it.
std::uint64_t payload_checksum(std::uint32_t src, std::uint32_t dst,
                               std::uint64_t bytes,
                               std::uint64_t seq) noexcept {
  std::uint64_t h = kFnvOffset;
  const auto mix64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= kFnvPrime;
    }
  };
  mix64(src);
  mix64(dst);
  mix64(bytes);
  mix64(seq);
  return h;
}

/// The bit pattern a link-level corruption flips into a delivered
/// checksum (any nonzero pattern breaks the receiver's comparison).
constexpr std::uint64_t kCorruptFlip = 0x5a5a5a5a5a5a5a5aull;

/// transfer_time at a bandwidth divided by \p bw_factor.
sim::Picos wire_time(std::uint64_t bytes, double bw, double bw_factor) {
  return sim::transfer_time(bytes, bw / bw_factor);
}

std::vector<obs::Label> proto_label(Protocol p) {
  return {{"proto", std::string{to_string(p)}}};
}

}  // namespace

Fabric::Fabric(NetSpec spec, std::uint32_t endpoints, obs::MetricsRegistry* reg,
               std::vector<fault::LinkFlapWindow> flaps,
               fault::MessageFaultConfig messages)
    : spec_(spec),
      endpoints_(endpoints),
      flaps_(std::move(flaps)),
      msg_(std::move(messages)),
      reg_(reg) {
  if (const Status s = spec_.validate(); s != Status::kSuccess) {
    throw StatusError{s, "net: NetSpec failed validation"};
  }
  if (endpoints_ == 0) {
    throw StatusError{Status::kErrorNetConfig, "net: fabric needs endpoints"};
  }
  if (const Status s = msg_.validate(); s != Status::kSuccess) {
    throw StatusError{s, "net: malformed message-fault config"};
  }
  for (const fault::LinkFlapWindow& w : flaps_) {
    // Schedule shape (a window that starts before t=0 or whose end
    // precedes its start) is a config error like any other NetSpec
    // malformation; endpoint range and factor direction stay
    // kErrorInvalidValue for compatibility with existing callers.
    if (w.start < 0 || w.duration < 0) {
      throw StatusError{Status::kErrorNetConfig,
                        "net: link-flap window end precedes its start"};
    }
    const bool nodes_ok =
        w.node_a < endpoints_ &&
        (w.node_b == fault::LinkFlapWindow::kAllPeers || w.node_b < endpoints_);
    if (!nodes_ok || w.bandwidth_factor < 1.0 || w.latency_factor < 1.0) {
      throw StatusError{Status::kErrorInvalidValue,
                        "net: malformed link-flap window"};
    }
  }
  down_.assign(endpoints_, 0);
  std::sort(flaps_.begin(), flaps_.end(),
            [](const fault::LinkFlapWindow& a, const fault::LinkFlapWindow& b) {
              return a.start != b.start ? a.start < b.start
                                        : a.node_a < b.node_a;
            });
  if (reg_ != nullptr) {
    for (std::size_t p = 0; p < kProtocols; ++p) {
      const auto lbl = proto_label(static_cast<Protocol>(p));
      msgs_[p] = &reg_->counter("ghum_net_msgs_total", lbl);
      bytes_[p] = &reg_->counter("ghum_net_bytes_total", lbl);
      selected_[p] = &reg_->counter("ghum_net_proto_selected_total", lbl);
    }
    handshake_ns_ = &reg_->histogram("ghum_net_rndv_handshake_ns");
    latency_ns_ = &reg_->histogram("ghum_net_msg_latency_ns");
    flapped_ = &reg_->counter("ghum_net_flapped_msgs_total");
    retransmits_ = &reg_->counter("ghum_net_retransmits_total");
    recovered_ = &reg_->counter("ghum_net_recovered_sends_total");
    exhausted_ = &reg_->counter("ghum_net_send_exhausted_total");
    dropped_ = &reg_->counter("ghum_net_dropped_msgs_total");
    corrupt_ = &reg_->counter("ghum_net_corrupt_msgs_total");
    dup_discards_ = &reg_->counter("ghum_net_dup_discards_total");
    reordered_ = &reg_->counter("ghum_net_reordered_msgs_total");
    acks_ = &reg_->counter("ghum_net_acks_total");
    e2e_corrupt_ = &reg_->counter("ghum_net_e2e_corrupt_msgs_total");
  }
}

sim::Rng& Fabric::link_rng(std::uint64_t link) {
  const auto it = link_rng_.find(link);
  if (it != link_rng_.end()) return it->second;
  // Independent stream per directed link: the fate sequence depends only
  // on this link's own message order, so cross-link interleaving cannot
  // perturb it (the per-link reproducibility contract).
  return link_rng_
      .emplace(link, sim::Rng{msg_.seed ^ ((link + 1) * 0x9e3779b97f4a7c15ull)})
      .first->second;
}

void Fabric::mix(std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    digest_ ^= (v >> (8 * i)) & 0xff;
    digest_ *= kFnvPrime;
  }
}

Fabric::Dilation Fabric::dilation(std::uint32_t src, std::uint32_t dst,
                                  sim::Picos at) const noexcept {
  Dilation d;
  for (const fault::LinkFlapWindow& w : flaps_) {
    if (w.start > at) break;  // sorted by start
    if (at >= w.start + w.duration) continue;
    const bool touches =
        w.node_b == fault::LinkFlapWindow::kAllPeers
            ? (src == w.node_a || dst == w.node_a)
            : ((src == w.node_a && dst == w.node_b) ||
               (src == w.node_b && dst == w.node_a));
    if (!touches) continue;
    // Overlapping windows compound, mirroring how the intra-node link
    // degradation model treats nested degradation causes.
    d.bandwidth_factor *= w.bandwidth_factor;
    d.latency_factor *= w.latency_factor;
    d.flapped = true;
  }
  return d;
}

sim::Picos Fabric::dilated_cost(Protocol proto, std::uint64_t bytes,
                                MemType mem, const Dilation& d,
                                sim::Picos* handshake) const {
  const NetSpec& s = spec_;
  const auto lat = [&](sim::Picos t) {
    return static_cast<sim::Picos>(static_cast<double>(t) * d.latency_factor);
  };
  const double bf = d.bandwidth_factor;
  if (handshake != nullptr) *handshake = 0;

  // Wire serialization; cuda-managed zero-copy paths are additionally
  // capped by the dedicated gdrcopy get/put engines (GPUDirect staging).
  double wire_bw = s.wire_bandwidth_Bps;
  const bool cuda = mem == MemType::kCudaManaged;
  if (cuda && (proto == Protocol::kZcopy || proto == Protocol::kRendezvous)) {
    wire_bw = std::min(wire_bw, std::min(s.gdr_get_bandwidth_Bps,
                                         s.gdr_put_bandwidth_Bps));
  }
  const sim::Picos t_wire = wire_time(bytes, wire_bw, bf);
  const sim::Picos t_bcopy = wire_time(bytes, s.bcopy_bandwidth_Bps, bf);

  // Cuda-managed eager payloads are staged through gdrcopy on both ends
  // (get on the sender, put on the receiver); zero-copy paths instead pay
  // the remote-key + gdr registration-cache cost once per side.
  sim::Picos mem_extra = 0;
  if (cuda) {
    if (proto == Protocol::kEagerShort || proto == Protocol::kEagerBcopy) {
      mem_extra = 2 * lat(s.gdr_latency + s.gdr_rcache_overhead) +
                  wire_time(bytes, s.gdr_get_bandwidth_Bps, bf) +
                  wire_time(bytes, s.gdr_put_bandwidth_Bps, bf);
    } else {
      mem_extra = lat(s.rkey_ptr) + 2 * lat(s.gdr_rcache_overhead);
    }
  }

  switch (proto) {
    case Protocol::kEagerShort:
      // Inlined payload: single-fragment protocol dispatch, a short active
      // message on each side, the payload drained at the NIC-to-sysmem
      // distance bandwidth.
      return lat(s.proto_single) + 2 * lat(s.am_short) + lat(s.wire_latency) +
             t_wire + wire_time(bytes, s.distance_bandwidth_Bps, bf) +
             mem_extra;
    case Protocol::kEagerBcopy:
      // Copy-in on the sender and copy-out on the receiver through bounce
      // buffers, both at UCX_BCOPY_BW.
      return lat(s.proto_single) + 2 * lat(s.am_bcopy) + lat(s.send_bcopy) +
             lat(s.wire_latency) + t_wire + 2 * t_bcopy + mem_extra;
    case Protocol::kZcopy:
      // Registered send buffer (rcache hit path) and the full IB send
      // pipeline; the receiver still copies out of its eager buffer.
      return lat(s.proto_multi) + lat(s.rcache_overhead) + lat(s.send_db) +
             lat(s.send_wqe_fetch) + lat(s.send_wqe_post) + lat(s.send_cqe) +
             lat(s.wire_latency) + t_wire + t_bcopy + mem_extra;
    case Protocol::kRendezvous: {
      // RTS over, RTR back, then a true zero-copy bulk transfer with both
      // sides registered. The handshake is what the latency histograms
      // (and the protocol crossover) are made of.
      const sim::Picos hs = lat(s.rndv_rts) + lat(s.rndv_rtr) +
                            lat(s.rndv_offload) + 2 * lat(s.wire_latency);
      if (handshake != nullptr) *handshake = hs;
      return hs + 2 * lat(s.rcache_overhead) + lat(s.send_db) +
             lat(s.send_wqe_fetch) + lat(s.send_wqe_post) + lat(s.send_cqe) +
             lat(s.wire_latency) + t_wire + mem_extra;
    }
  }
  return 0;
}

sim::Picos Fabric::cost(Protocol proto, std::uint64_t bytes, MemType mem) const {
  return dilated_cost(proto, bytes, mem, Dilation{}, nullptr);
}

Protocol Fabric::select(std::uint64_t bytes, MemType mem) const {
  if (spec_.bcopy_max != 0) {
    // Explicit threshold ladder (the tunable policy axis).
    if (bytes <= spec_.eager_short_max) return Protocol::kEagerShort;
    if (bytes <= spec_.bcopy_max) return Protocol::kEagerBcopy;
    if (bytes <= spec_.zcopy_max) return Protocol::kZcopy;
    return Protocol::kRendezvous;
  }
  // UCX estimator rule: cheapest modeled cost among eligible protocols,
  // ties to the simpler protocol. Eager-short is capacity-limited.
  Protocol best = Protocol::kEagerBcopy;
  sim::Picos best_cost = cost(best, bytes, mem);
  if (bytes <= spec_.eager_short_max) {
    const sim::Picos c = cost(Protocol::kEagerShort, bytes, mem);
    if (c < best_cost) {
      best = Protocol::kEagerShort;
      best_cost = c;
    }
  }
  for (const Protocol p : {Protocol::kZcopy, Protocol::kRendezvous}) {
    const sim::Picos c = cost(p, bytes, mem);
    if (c < best_cost) {
      best = p;
      best_cost = c;
    }
  }
  return best;
}

Transfer Fabric::transfer(std::uint32_t src, std::uint32_t dst,
                          std::uint64_t bytes, MemType mem, sim::Picos now,
                          const obs::TraceContext* ctx) {
  if (src >= endpoints_ || dst >= endpoints_ || src == dst) {
    throw StatusError{Status::kErrorInvalidValue,
                      "net: transfer endpoints out of range"};
  }
  const std::uint64_t link = std::uint64_t{src} * endpoints_ + dst;
  sim::Picos& busy = busy_until_[link];
  Transfer t;
  t.start = std::max(now, busy);
  t.queued = t.start - now;

  const Dilation d = dilation(src, dst, t.start);
  t.proto = select(bytes, mem);
  t.end = t.start + dilated_cost(t.proto, bytes, mem, d, &t.handshake);
  busy = t.end;

  const auto p = static_cast<std::size_t>(t.proto);
  ++totals_.msgs[p];
  totals_.bytes[p] += bytes;
  link_tally_[link] += bytes;
  if (log_enabled_) {
    TransferRecord r;
    r.src = src;
    r.dst = dst;
    r.bytes = bytes;
    r.mem = mem;
    r.proto = t.proto;
    r.start = t.start;
    r.end = t.end;
    if (ctx != nullptr) r.ctx = *ctx;
    log_.push_back(r);
  }
  if (t.proto == Protocol::kRendezvous) ++totals_.rndv_handshakes;
  if (d.flapped) ++totals_.flapped_msgs;

  if (reg_ != nullptr) {
    msgs_[p]->inc();
    bytes_[p]->inc(bytes);
    selected_[p]->inc();
    latency_ns_->observe(
        static_cast<std::uint64_t>((t.end - t.start) / sim::kPicosPerNano));
    if (t.proto == Protocol::kRendezvous) {
      handshake_ns_->observe(
          static_cast<std::uint64_t>(t.handshake / sim::kPicosPerNano));
    }
    if (d.flapped) flapped_->inc();
    obs::Counter*& lc = link_bytes_[link];
    if (lc == nullptr) {
      lc = &reg_->counter("ghum_net_link_bytes_total",
                          {{"link", std::to_string(src) + "-" +
                                        std::to_string(dst)}});
    }
    lc->inc(bytes);
  }

  mix(src);
  mix(dst);
  mix(bytes);
  mix(static_cast<std::uint64_t>(mem));
  mix(static_cast<std::uint64_t>(t.proto));
  mix(static_cast<std::uint64_t>(t.start));
  mix(static_cast<std::uint64_t>(t.end));
  return t;
}

Datagram Fabric::datagram(std::uint32_t src, std::uint32_t dst,
                          std::uint64_t bytes, MemType mem, sim::Picos now,
                          const obs::TraceContext* ctx) {
  Datagram d;
  d.wire = transfer(src, dst, bytes, mem, now, ctx);
  d.delivered_at = d.wire.end;
  d.delivered = !endpoint_down(dst);

  if (msg_.enabled) {
    // Always draw all four fates in fixed order so the stream position
    // depends only on how many messages this link has carried, never on
    // earlier outcomes.
    sim::Rng& rng = link_rng(std::uint64_t{src} * endpoints_ + dst);
    const bool f_drop = rng.next_double() < msg_.drop_prob;
    const bool f_corrupt = rng.next_double() < msg_.corrupt_prob;
    const bool f_dup = rng.next_double() < msg_.duplicate_prob;
    const bool f_reorder = rng.next_double() < msg_.reorder_prob;
    if (f_drop) {
      // Lost in flight: the wire was occupied but nothing arrives. Drop
      // trumps every other fate.
      d.delivered = false;
      ++rtotals_.drops;
      if (dropped_ != nullptr) dropped_->inc();
    } else if (d.delivered) {
      if (f_corrupt) {
        d.corrupt = true;
        ++rtotals_.corruptions;
        if (corrupt_ != nullptr) corrupt_->inc();
      }
      if (f_dup) {
        // The link delivers a second copy: charged on the wire like any
        // message, discarded by receive-side dedup.
        d.duplicated = true;
        transfer(src, dst, bytes, mem, d.wire.end, ctx);
      }
      if (f_reorder) {
        d.reordered = true;
        d.delivered_at += msg_.reorder_delay;
        ++rtotals_.reorders;
        if (reordered_ != nullptr) reordered_->inc();
      }
    }
  }

  // Fold the fate into the history digest so two chaos runs only match
  // when every message met the same end.
  mix(static_cast<std::uint64_t>(d.delivered) |
      (static_cast<std::uint64_t>(d.corrupt) << 1) |
      (static_cast<std::uint64_t>(d.duplicated) << 2) |
      (static_cast<std::uint64_t>(d.reordered) << 3));
  return d;
}

ReliableTransfer Fabric::send(std::uint32_t src, std::uint32_t dst,
                              std::uint64_t bytes, MemType mem, sim::Picos now,
                              const obs::TraceContext* ctx) {
  const std::uint64_t link = std::uint64_t{src} * endpoints_ + dst;
  ReliableTransfer r;
  ++rtotals_.sends;

  // The payload checksum travels with every attempt of this sequence
  // number; a link-level corruption perturbs the delivered value.
  const std::uint64_t seq = next_seq_[link]++;
  const std::uint64_t sent_sum = payload_checksum(src, dst, bytes, seq);
  const std::uint32_t budget = msg_.enabled ? msg_.max_retransmits : 0;

  bool receiver_has = false;  // payload accepted at the receiver (dedup floor)
  sim::Picos clock = now;
  for (std::uint32_t attempt = 0;; ++attempt) {
    const Datagram d = datagram(src, dst, bytes, mem, clock, ctx);
    bool acked = false;
    sim::Picos ack_at = 0;
    sim::Picos nak_at = 0;
    if (d.delivered) {
      const std::uint64_t recv_sum =
          d.corrupt ? (sent_sum ^ kCorruptFlip) : sent_sum;
      if (recv_sum == sent_sum) {
        if (receiver_has) {
          // Retransmission of a payload whose ack was lost: dedup
          // discards the body, but the receiver still re-acks.
          ++rtotals_.dup_discards;
          if (dup_discards_ != nullptr) dup_discards_->inc();
        } else {
          receiver_has = true;
          r.wire = d.wire;
          r.delivered_at = d.delivered_at;
          if (d.reordered) r.reordered = true;
        }
        if (d.duplicated) {
          // The link's extra copy is always redundant by now.
          ++rtotals_.dup_discards;
          if (dup_discards_ != nullptr) dup_discards_->inc();
        }
        const Datagram ack =
            datagram(dst, src, msg_.ack_bytes, MemType::kHost, d.delivered_at);
        ++rtotals_.acks;
        if (acks_ != nullptr) acks_->inc();
        if (ack.delivered && !ack.corrupt) {
          acked = true;
          ack_at = ack.delivered_at;
        }
      } else {
        // Checksum failure at the receiver: NAK back; a delivered NAK
        // lets the sender retransmit before its timeout would fire.
        const Datagram nak =
            datagram(dst, src, msg_.ack_bytes, MemType::kHost, d.delivered_at);
        ++rtotals_.acks;
        if (acks_ != nullptr) acks_->inc();
        if (nak.delivered && !nak.corrupt) nak_at = nak.delivered_at;
      }
    }

    if (acked) {
      r.end = ack_at;
      r.status = Status::kSuccess;
      if (attempt > 0) {
        ++rtotals_.recovered_sends;
        if (recovered_ != nullptr) recovered_->inc();
      }
      break;
    }
    const sim::Picos timeout = msg_.ack_timeout * (sim::Picos{1} << attempt);
    if (attempt >= budget) {
      r.status = Status::kErrorRetransmitExhausted;
      r.end = d.wire.end + timeout;
      ++rtotals_.exhausted;
      if (exhausted_ != nullptr) exhausted_->inc();
      break;
    }
    // Retransmit at the exponential-backoff timeout, or as soon as a NAK
    // told us the payload arrived mangled — whichever comes first.
    clock = d.wire.end + timeout;
    if (nak_at != 0 && nak_at < clock) clock = nak_at;
    ++r.attempts;
    ++r.retransmits;
    ++rtotals_.retransmits;
    if (retransmits_ != nullptr) retransmits_->inc();
  }

  // End-to-end corruption of bulk payloads: past the link checksum, so it
  // only exists on *verified-delivered* sends and only the caller's own
  // digest check can catch it.
  if (msg_.enabled && r.status == Status::kSuccess &&
      bytes >= msg_.bulk_threshold) {
    const std::uint64_t bulk_index = bulk_sends_++;
    bool scheduled = false;
    for (const std::uint64_t i : msg_.e2e_corrupt_bulk) {
      if (i == bulk_index) {
        scheduled = true;
        break;
      }
    }
    if (scheduled || link_rng(link).next_double() < msg_.e2e_corrupt_prob) {
      r.payload_corrupt = true;
      ++rtotals_.e2e_corruptions;
      if (e2e_corrupt_ != nullptr) e2e_corrupt_->inc();
    }
  }

  mix(static_cast<std::uint64_t>(r.status) |
      (static_cast<std::uint64_t>(r.payload_corrupt) << 8) |
      (std::uint64_t{r.attempts} << 16));
  mix(static_cast<std::uint64_t>(r.end));
  return r;
}

}  // namespace ghum::net
