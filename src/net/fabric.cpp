#include "net/fabric.hpp"

#include <algorithm>
#include <string>

namespace ghum::net {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// transfer_time at a bandwidth divided by \p bw_factor.
sim::Picos wire_time(std::uint64_t bytes, double bw, double bw_factor) {
  return sim::transfer_time(bytes, bw / bw_factor);
}

std::vector<obs::Label> proto_label(Protocol p) {
  return {{"proto", std::string{to_string(p)}}};
}

}  // namespace

Fabric::Fabric(NetSpec spec, std::uint32_t endpoints, obs::MetricsRegistry* reg,
               std::vector<fault::LinkFlapWindow> flaps)
    : spec_(spec), endpoints_(endpoints), flaps_(std::move(flaps)), reg_(reg) {
  if (const Status s = spec_.validate(); s != Status::kSuccess) {
    throw StatusError{s, "net: NetSpec failed validation"};
  }
  if (endpoints_ == 0) {
    throw StatusError{Status::kErrorNetConfig, "net: fabric needs endpoints"};
  }
  for (const fault::LinkFlapWindow& w : flaps_) {
    const bool nodes_ok =
        w.node_a < endpoints_ &&
        (w.node_b == fault::LinkFlapWindow::kAllPeers || w.node_b < endpoints_);
    if (!nodes_ok || w.duration < 0 || w.bandwidth_factor < 1.0 ||
        w.latency_factor < 1.0) {
      throw StatusError{Status::kErrorInvalidValue,
                        "net: malformed link-flap window"};
    }
  }
  std::sort(flaps_.begin(), flaps_.end(),
            [](const fault::LinkFlapWindow& a, const fault::LinkFlapWindow& b) {
              return a.start != b.start ? a.start < b.start
                                        : a.node_a < b.node_a;
            });
  if (reg_ != nullptr) {
    for (std::size_t p = 0; p < kProtocols; ++p) {
      const auto lbl = proto_label(static_cast<Protocol>(p));
      msgs_[p] = &reg_->counter("ghum_net_msgs_total", lbl);
      bytes_[p] = &reg_->counter("ghum_net_bytes_total", lbl);
      selected_[p] = &reg_->counter("ghum_net_proto_selected_total", lbl);
    }
    handshake_ns_ = &reg_->histogram("ghum_net_rndv_handshake_ns");
    latency_ns_ = &reg_->histogram("ghum_net_msg_latency_ns");
    flapped_ = &reg_->counter("ghum_net_flapped_msgs_total");
  }
}

void Fabric::mix(std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    digest_ ^= (v >> (8 * i)) & 0xff;
    digest_ *= kFnvPrime;
  }
}

Fabric::Dilation Fabric::dilation(std::uint32_t src, std::uint32_t dst,
                                  sim::Picos at) const noexcept {
  Dilation d;
  for (const fault::LinkFlapWindow& w : flaps_) {
    if (w.start > at) break;  // sorted by start
    if (at >= w.start + w.duration) continue;
    const bool touches =
        w.node_b == fault::LinkFlapWindow::kAllPeers
            ? (src == w.node_a || dst == w.node_a)
            : ((src == w.node_a && dst == w.node_b) ||
               (src == w.node_b && dst == w.node_a));
    if (!touches) continue;
    // Overlapping windows compound, mirroring how the intra-node link
    // degradation model treats nested degradation causes.
    d.bandwidth_factor *= w.bandwidth_factor;
    d.latency_factor *= w.latency_factor;
    d.flapped = true;
  }
  return d;
}

sim::Picos Fabric::dilated_cost(Protocol proto, std::uint64_t bytes,
                                MemType mem, const Dilation& d,
                                sim::Picos* handshake) const {
  const NetSpec& s = spec_;
  const auto lat = [&](sim::Picos t) {
    return static_cast<sim::Picos>(static_cast<double>(t) * d.latency_factor);
  };
  const double bf = d.bandwidth_factor;
  if (handshake != nullptr) *handshake = 0;

  // Wire serialization; cuda-managed zero-copy paths are additionally
  // capped by the dedicated gdrcopy get/put engines (GPUDirect staging).
  double wire_bw = s.wire_bandwidth_Bps;
  const bool cuda = mem == MemType::kCudaManaged;
  if (cuda && (proto == Protocol::kZcopy || proto == Protocol::kRendezvous)) {
    wire_bw = std::min(wire_bw, std::min(s.gdr_get_bandwidth_Bps,
                                         s.gdr_put_bandwidth_Bps));
  }
  const sim::Picos t_wire = wire_time(bytes, wire_bw, bf);
  const sim::Picos t_bcopy = wire_time(bytes, s.bcopy_bandwidth_Bps, bf);

  // Cuda-managed eager payloads are staged through gdrcopy on both ends
  // (get on the sender, put on the receiver); zero-copy paths instead pay
  // the remote-key + gdr registration-cache cost once per side.
  sim::Picos mem_extra = 0;
  if (cuda) {
    if (proto == Protocol::kEagerShort || proto == Protocol::kEagerBcopy) {
      mem_extra = 2 * lat(s.gdr_latency + s.gdr_rcache_overhead) +
                  wire_time(bytes, s.gdr_get_bandwidth_Bps, bf) +
                  wire_time(bytes, s.gdr_put_bandwidth_Bps, bf);
    } else {
      mem_extra = lat(s.rkey_ptr) + 2 * lat(s.gdr_rcache_overhead);
    }
  }

  switch (proto) {
    case Protocol::kEagerShort:
      // Inlined payload: single-fragment protocol dispatch, a short active
      // message on each side, the payload drained at the NIC-to-sysmem
      // distance bandwidth.
      return lat(s.proto_single) + 2 * lat(s.am_short) + lat(s.wire_latency) +
             t_wire + wire_time(bytes, s.distance_bandwidth_Bps, bf) +
             mem_extra;
    case Protocol::kEagerBcopy:
      // Copy-in on the sender and copy-out on the receiver through bounce
      // buffers, both at UCX_BCOPY_BW.
      return lat(s.proto_single) + 2 * lat(s.am_bcopy) + lat(s.send_bcopy) +
             lat(s.wire_latency) + t_wire + 2 * t_bcopy + mem_extra;
    case Protocol::kZcopy:
      // Registered send buffer (rcache hit path) and the full IB send
      // pipeline; the receiver still copies out of its eager buffer.
      return lat(s.proto_multi) + lat(s.rcache_overhead) + lat(s.send_db) +
             lat(s.send_wqe_fetch) + lat(s.send_wqe_post) + lat(s.send_cqe) +
             lat(s.wire_latency) + t_wire + t_bcopy + mem_extra;
    case Protocol::kRendezvous: {
      // RTS over, RTR back, then a true zero-copy bulk transfer with both
      // sides registered. The handshake is what the latency histograms
      // (and the protocol crossover) are made of.
      const sim::Picos hs = lat(s.rndv_rts) + lat(s.rndv_rtr) +
                            lat(s.rndv_offload) + 2 * lat(s.wire_latency);
      if (handshake != nullptr) *handshake = hs;
      return hs + 2 * lat(s.rcache_overhead) + lat(s.send_db) +
             lat(s.send_wqe_fetch) + lat(s.send_wqe_post) + lat(s.send_cqe) +
             lat(s.wire_latency) + t_wire + mem_extra;
    }
  }
  return 0;
}

sim::Picos Fabric::cost(Protocol proto, std::uint64_t bytes, MemType mem) const {
  return dilated_cost(proto, bytes, mem, Dilation{}, nullptr);
}

Protocol Fabric::select(std::uint64_t bytes, MemType mem) const {
  if (spec_.bcopy_max != 0) {
    // Explicit threshold ladder (the tunable policy axis).
    if (bytes <= spec_.eager_short_max) return Protocol::kEagerShort;
    if (bytes <= spec_.bcopy_max) return Protocol::kEagerBcopy;
    if (bytes <= spec_.zcopy_max) return Protocol::kZcopy;
    return Protocol::kRendezvous;
  }
  // UCX estimator rule: cheapest modeled cost among eligible protocols,
  // ties to the simpler protocol. Eager-short is capacity-limited.
  Protocol best = Protocol::kEagerBcopy;
  sim::Picos best_cost = cost(best, bytes, mem);
  if (bytes <= spec_.eager_short_max) {
    const sim::Picos c = cost(Protocol::kEagerShort, bytes, mem);
    if (c < best_cost) {
      best = Protocol::kEagerShort;
      best_cost = c;
    }
  }
  for (const Protocol p : {Protocol::kZcopy, Protocol::kRendezvous}) {
    const sim::Picos c = cost(p, bytes, mem);
    if (c < best_cost) {
      best = p;
      best_cost = c;
    }
  }
  return best;
}

Transfer Fabric::transfer(std::uint32_t src, std::uint32_t dst,
                          std::uint64_t bytes, MemType mem, sim::Picos now,
                          const obs::TraceContext* ctx) {
  if (src >= endpoints_ || dst >= endpoints_ || src == dst) {
    throw StatusError{Status::kErrorInvalidValue,
                      "net: transfer endpoints out of range"};
  }
  const std::uint64_t link = std::uint64_t{src} * endpoints_ + dst;
  sim::Picos& busy = busy_until_[link];
  Transfer t;
  t.start = std::max(now, busy);
  t.queued = t.start - now;

  const Dilation d = dilation(src, dst, t.start);
  t.proto = select(bytes, mem);
  t.end = t.start + dilated_cost(t.proto, bytes, mem, d, &t.handshake);
  busy = t.end;

  const auto p = static_cast<std::size_t>(t.proto);
  ++totals_.msgs[p];
  totals_.bytes[p] += bytes;
  link_tally_[link] += bytes;
  if (log_enabled_) {
    TransferRecord r;
    r.src = src;
    r.dst = dst;
    r.bytes = bytes;
    r.mem = mem;
    r.proto = t.proto;
    r.start = t.start;
    r.end = t.end;
    if (ctx != nullptr) r.ctx = *ctx;
    log_.push_back(r);
  }
  if (t.proto == Protocol::kRendezvous) ++totals_.rndv_handshakes;
  if (d.flapped) ++totals_.flapped_msgs;

  if (reg_ != nullptr) {
    msgs_[p]->inc();
    bytes_[p]->inc(bytes);
    selected_[p]->inc();
    latency_ns_->observe(
        static_cast<std::uint64_t>((t.end - t.start) / sim::kPicosPerNano));
    if (t.proto == Protocol::kRendezvous) {
      handshake_ns_->observe(
          static_cast<std::uint64_t>(t.handshake / sim::kPicosPerNano));
    }
    if (d.flapped) flapped_->inc();
    obs::Counter*& lc = link_bytes_[link];
    if (lc == nullptr) {
      lc = &reg_->counter("ghum_net_link_bytes_total",
                          {{"link", std::to_string(src) + "-" +
                                        std::to_string(dst)}});
    }
    lc->inc(bytes);
  }

  mix(src);
  mix(dst);
  mix(bytes);
  mix(static_cast<std::uint64_t>(mem));
  mix(static_cast<std::uint64_t>(t.proto));
  mix(static_cast<std::uint64_t>(t.start));
  mix(static_cast<std::uint64_t>(t.end));
  return t;
}

}  // namespace ghum::net
