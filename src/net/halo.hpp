#pragma once

#include <cstdint>
#include <vector>

#include "apps/hotspot.hpp"
#include "apps/qvsim.hpp"
#include "apps/srad.hpp"
#include "core/system_config.hpp"
#include "net/fabric.hpp"

/// \file halo.hpp
/// Multi-node workloads over the net::Fabric (DESIGN.md Section 12): the
/// classic HPC communication patterns, built on the existing coroutine app
/// steps. Each of 2..8 simulated superchips owns a private core::System
/// running a partition of the problem; the partitions advance in lockstep
/// at the apps' natural yield boundaries, and at every compute-step
/// boundary the boundary data moves through the fabric:
///
///  - halo exchange (hotspot, srad): each node holds a contiguous band of
///    rows and trades one ghost row (hotspot) or two field rows (srad)
///    with each neighbor after every stencil iteration — the canonical
///    nearest-neighbor BSP pattern;
///  - distributed statevector chunk exchange (qvsim): each of 2^k nodes
///    holds 2^(q-k) amplitudes; after every gate layer, partner pairs
///    across one global qubit swap half their local chunk, cycling through
///    the k global qubits — Qiskit-Aer's chunk distribution shape.
///
/// A node cannot start its next compute step before the last halo it
/// depends on has been delivered, so fabric serialization and link-flap
/// dilation propagate into the computation's critical path. Everything is
/// deterministic: two identical runs produce identical digests (per-node
/// event logs + the fabric history), which bench_netscope gates.

namespace ghum::net {

struct MultiNodeConfig {
  /// Simulated superchips (2..8; the qvsim pattern needs a power of two).
  std::uint32_t nodes = 2;
  apps::MemMode mode = apps::MemMode::kManaged;
  /// Per-node machine configuration (every node is identical).
  core::SystemConfig node_config;
  /// Fabric cost model, used when no external fabric is supplied.
  NetSpec net;
  /// Message-fault schedule for the private fabric. When enabled, every
  /// halo moves through the reliable send path (checksummed, acked,
  /// retransmitted) instead of the raw transfer path, so the exchange
  /// survives drops and corruption at the cost of the recovery traffic.
  /// Ignored when an external fabric is supplied (it owns its own
  /// schedule).
  fault::MessageFaultConfig messages;
};

struct MultiNodeResult {
  std::uint32_t nodes = 0;
  sim::Picos makespan = 0;             ///< max node-local end time
  std::vector<sim::Picos> node_end;    ///< per-node local end times
  sim::Picos net_wait = 0;   ///< total time nodes stalled waiting on halos
  std::uint64_t exchanges = 0;         ///< synchronization rounds performed
  std::uint64_t checksum = 0;          ///< FNV over partition checksums
  /// FNV over per-node end times, event digests, partition checksums and
  /// the fabric transfer history — the bit-for-bit reproducibility gate.
  std::uint64_t digest = 0;
  FabricTotals net;                    ///< fabric tally for this run
};

/// Row-band halo exchange for the hotspot stencil. \p global is the whole
/// problem; each node gets rows/nodes rows (remainder to the low nodes)
/// and trades one ghost row per neighbor per iteration. Throws
/// StatusError{kErrorInvalidValue} on nodes outside 2..8 or a partition
/// with no rows. When \p fabric is null, a private one is built from
/// cfg.net; passing one shares counters/history with the caller.
[[nodiscard]] MultiNodeResult run_hotspot_halo(const MultiNodeConfig& cfg,
                                               const apps::HotspotConfig& global,
                                               Fabric* fabric = nullptr);

/// Same banding for srad; two field rows (image J and coefficient c) per
/// neighbor per diffusion iteration.
[[nodiscard]] MultiNodeResult run_srad_halo(const MultiNodeConfig& cfg,
                                            const apps::SradConfig& global,
                                            Fabric* fabric = nullptr);

/// Distributed statevector chunk exchange: 2^k nodes each simulate
/// qubits-k local qubits; after every gate step, partners across global
/// qubit (step mod k) swap half their chunk. Throws on a non-power-of-two
/// node count or too few qubits to split.
[[nodiscard]] MultiNodeResult run_qv_chunks(const MultiNodeConfig& cfg,
                                            const apps::QvConfig& global,
                                            Fabric* fabric = nullptr);

}  // namespace ghum::net
