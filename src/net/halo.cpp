#include "net/halo.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "core/system.hpp"
#include "fault/status.hpp"
#include "runtime/runtime.hpp"

namespace ghum::net {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

/// One boundary message owed after a compute round.
struct HaloMsg {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t bytes = 0;
};

struct NodeRun {
  std::unique_ptr<core::System> sys;
  std::unique_ptr<runtime::Runtime> rt;
  apps::AppCoro coro;
  bool more = true;
};

void check_node_count(std::uint32_t nodes) {
  if (nodes < 2 || nodes > 8) {
    throw StatusError{Status::kErrorInvalidValue,
                      "net: multi-node runs span 2..8 superchips"};
  }
}

/// The BSP engine shared by all three workloads. Every node's coroutine is
/// stepped once per round, in node order; after each round inside the
/// compute window [compute_begin, compute_begin + compute_rounds), \p plan
/// emits the boundary messages of that round, each is charged through the
/// fabric at its sender's local clock, and every receiver's clock is
/// advanced to its latest arrival before the next round may start. The
/// advance is the halo wait: a slow or flapped link shows up directly in
/// the downstream node's critical path.
MultiNodeResult lockstep(
    const MultiNodeConfig& cfg, Fabric* fabric, std::uint32_t compute_begin,
    std::uint32_t compute_rounds,
    const std::function<apps::AppCoro(runtime::Runtime&, std::uint32_t)>& make,
    const std::function<void(std::uint32_t round, std::vector<HaloMsg>&)>&
        plan) {
  check_node_count(cfg.nodes);
  Fabric local_fabric{cfg.net, cfg.nodes, nullptr, {}, cfg.messages};
  Fabric& fab = fabric != nullptr ? *fabric : local_fabric;
  if (fab.endpoints() < cfg.nodes) {
    throw StatusError{Status::kErrorInvalidValue,
                      "net: fabric has fewer endpoints than nodes"};
  }
  const MemType mem = cfg.mode == apps::MemMode::kManaged
                          ? MemType::kCudaManaged
                          : MemType::kHost;

  std::vector<NodeRun> nodes(cfg.nodes);
  for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
    NodeRun& n = nodes[i];
    n.sys = std::make_unique<core::System>(cfg.node_config);
    n.rt = std::make_unique<runtime::Runtime>(*n.sys);
    n.coro = make(*n.rt, i);
  }

  MultiNodeResult res;
  res.nodes = cfg.nodes;
  std::vector<HaloMsg> msgs;
  std::vector<sim::Picos> arrival(cfg.nodes, 0);

  for (std::uint32_t round = 0;; ++round) {
    bool any = false;
    for (NodeRun& n : nodes) {
      if (n.more) n.more = n.coro.step();
      any = any || n.more;
    }
    if (!any) break;

    if (round < compute_begin || round >= compute_begin + compute_rounds) {
      continue;
    }
    msgs.clear();
    plan(round - compute_begin, msgs);
    std::fill(arrival.begin(), arrival.end(), sim::Picos{0});
    for (const HaloMsg& m : msgs) {
      // On a lossy fabric the halo must actually arrive: the reliable
      // send path pays for retransmissions, and a neighbor that never
      // confirms stalls its receiver exactly as a real exchange would.
      // On a clean fabric the raw transfer path keeps pre-existing runs
      // bit-for-bit unchanged.
      if (fab.lossy()) {
        const ReliableTransfer t =
            fab.send(m.src, m.dst, m.bytes, mem, nodes[m.src].sys->now());
        arrival[m.dst] = std::max(
            arrival[m.dst], t.status == Status::kSuccess ? t.delivered_at
                                                         : t.end);
      } else {
        const Transfer t =
            fab.transfer(m.src, m.dst, m.bytes, mem, nodes[m.src].sys->now());
        arrival[m.dst] = std::max(arrival[m.dst], t.end);
      }
    }
    for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
      const sim::Picos now = nodes[i].sys->now();
      if (arrival[i] > now) {
        res.net_wait += arrival[i] - now;
        nodes[i].sys->advance(arrival[i] - now);
      }
    }
    ++res.exchanges;
  }

  res.node_end.reserve(cfg.nodes);
  std::uint64_t checksum = kFnvOffset;
  std::uint64_t digest = kFnvOffset;
  for (NodeRun& n : nodes) {
    const sim::Picos end = n.sys->now();
    res.node_end.push_back(end);
    res.makespan = std::max(res.makespan, end);
    mix(checksum, n.coro.report().checksum);
    mix(digest, static_cast<std::uint64_t>(end));
    mix(digest, n.sys->events().digest(end));
    mix(digest, n.coro.report().checksum);
  }
  mix(digest, fab.digest());
  res.checksum = checksum;
  res.digest = digest;
  res.net = fab.totals();
  return res;
}

/// Row-band partition: rows/nodes each, remainder spread over the low
/// nodes; throws if some node would get an empty band.
std::uint32_t band_rows(std::uint32_t rows, std::uint32_t nodes,
                        std::uint32_t i) {
  const std::uint32_t base = rows / nodes;
  const std::uint32_t r = base + (i < rows % nodes ? 1u : 0u);
  if (r == 0) {
    throw StatusError{Status::kErrorInvalidValue,
                      "net: row band smaller than the node count"};
  }
  return r;
}

/// Nearest-neighbor plan: every interior boundary moves one message in
/// each direction, all rounds identical.
void neighbor_plan(std::uint32_t nodes, std::uint64_t bytes,
                   std::vector<HaloMsg>& msgs) {
  for (std::uint32_t i = 0; i < nodes; ++i) {
    if (i > 0) msgs.push_back({i, i - 1, bytes});
    if (i + 1 < nodes) msgs.push_back({i, i + 1, bytes});
  }
}

}  // namespace

MultiNodeResult run_hotspot_halo(const MultiNodeConfig& cfg,
                                 const apps::HotspotConfig& global,
                                 Fabric* fabric) {
  check_node_count(cfg.nodes);
  std::vector<apps::HotspotConfig> parts(cfg.nodes, global);
  for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
    parts[i].rows = band_rows(global.rows, cfg.nodes, i);
    parts[i].seed = global.seed + i;
  }
  // One ghost row of temperatures per neighbor per stencil iteration.
  const std::uint64_t halo = std::uint64_t{global.cols} * sizeof(float);
  return lockstep(
      cfg, fabric, /*compute_begin=*/2, /*compute_rounds=*/global.iterations,
      [&](runtime::Runtime& rt, std::uint32_t i) {
        return apps::hotspot_steps(rt, cfg.mode, parts[i]);
      },
      [&](std::uint32_t, std::vector<HaloMsg>& msgs) {
        neighbor_plan(cfg.nodes, halo, msgs);
      });
}

MultiNodeResult run_srad_halo(const MultiNodeConfig& cfg,
                              const apps::SradConfig& global, Fabric* fabric) {
  check_node_count(cfg.nodes);
  std::vector<apps::SradConfig> parts(cfg.nodes, global);
  for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
    parts[i].rows = band_rows(global.rows, cfg.nodes, i);
    parts[i].seed = global.seed + i;
  }
  // Two field rows per neighbor per diffusion iteration: the image J and
  // the diffusion-coefficient field c both feed the 5-point stencil.
  const std::uint64_t halo = 2ull * global.cols * sizeof(float);
  return lockstep(
      cfg, fabric, /*compute_begin=*/2, /*compute_rounds=*/global.iterations,
      [&](runtime::Runtime& rt, std::uint32_t i) {
        return apps::srad_steps(rt, cfg.mode, parts[i]);
      },
      [&](std::uint32_t, std::vector<HaloMsg>& msgs) {
        neighbor_plan(cfg.nodes, halo, msgs);
      });
}

MultiNodeResult run_qv_chunks(const MultiNodeConfig& cfg,
                              const apps::QvConfig& global, Fabric* fabric) {
  check_node_count(cfg.nodes);
  if ((cfg.nodes & (cfg.nodes - 1)) != 0) {
    throw StatusError{Status::kErrorInvalidValue,
                      "net: qv chunk exchange needs a power-of-two node count"};
  }
  if (cfg.mode == apps::MemMode::kExplicit) {
    // The explicit port's oversized path runs a nested chunk-sweep
    // coroutine with a different yield structure; the distributed form
    // models the unified ports only.
    throw StatusError{Status::kErrorInvalidValue,
                      "net: qv chunk exchange models unified memory modes"};
  }
  std::uint32_t k = 0;
  while ((1u << (k + 1)) <= cfg.nodes) ++k;
  if (global.qubits < k + 2) {
    throw StatusError{Status::kErrorInvalidValue,
                      "net: too few qubits to split across nodes"};
  }

  // Every node simulates the same circuit shape over its local chunk of
  // 2^(qubits-k) amplitudes: same seed, fewer qubits.
  apps::QvConfig local = global;
  local.qubits = global.qubits - k;
  const std::uint32_t gates =
      static_cast<std::uint32_t>(apps::qv_circuit(local).size());
  // After each gate layer, partners across global qubit (round mod k) swap
  // half their chunk (the Aer chunk-distribution pattern).
  const std::uint64_t swap_bytes = (16ull << local.qubits) / 2;

  return lockstep(
      cfg, fabric, /*compute_begin=*/2, /*compute_rounds=*/gates,
      [&](runtime::Runtime& rt, std::uint32_t) {
        return apps::qvsim_steps(rt, cfg.mode, local);
      },
      [&](std::uint32_t round, std::vector<HaloMsg>& msgs) {
        const std::uint32_t bit = 1u << (round % k);
        for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
          msgs.push_back({i, i ^ bit, swap_bytes});
        }
      });
}

}  // namespace ghum::net
