#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "fault/fleet_fault.hpp"
#include "net/net_spec.hpp"
#include "obs/fleet_trace.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

/// \file fabric.hpp
/// net::Fabric — a deterministic inter-superchip network (DESIGN.md
/// Section 12). Endpoints are numbered 0..N-1; every ordered pair is a
/// directed link with its own serialization horizon, so concurrent
/// transfers on one link queue behind each other deterministically (the
/// fabric's congestion model: full serialization per directed link, the
/// same discipline the NVLink-C2C model uses per direction). Each message
/// is charged one of the four UCX protocols selected per NetSpec, with
/// cuda-managed payloads paying the gdrcopy/rkey_ptr staging costs of the
/// Grace Hopper ucx.conf section. fault::LinkFlapWindow schedules dilate
/// the costs of affected links while the window is open — the fleet-level
/// mirror of NVLink degradation windows.
///
/// Everything is replayable: same spec + same transfer sequence => the
/// same per-message costs, the same serialization order and the same
/// history digest (tests/test_net.cpp and bench_netscope gate this).

namespace ghum::net {

/// Outcome of one charged message.
struct Transfer {
  Protocol proto = Protocol::kEagerShort;
  sim::Picos start = 0;      ///< when the link accepted it (>= requested time)
  sim::Picos end = 0;        ///< delivery completion at the receiver
  sim::Picos queued = 0;     ///< start - requested time (link serialization)
  sim::Picos handshake = 0;  ///< rendezvous rts/rtr round trip (0 otherwise)
};

/// One logged transfer (recorded when set_log_enabled(true)): the wire
/// record plus the causal trace context it carried — what the fleet
/// trace exporter turns into duration events and cross-node flow-chain
/// members.
struct TransferRecord {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t bytes = 0;
  MemType mem = MemType::kHost;
  Protocol proto = Protocol::kEagerShort;
  sim::Picos start = 0;
  sim::Picos end = 0;
  obs::TraceContext ctx;
};

/// One unreliable wire attempt under the message-fault schedule: the raw
/// transfer plus the fate the link's seeded RNG stream dealt it. A
/// dropped datagram still occupied the wire (it was transmitted); a
/// corrupt one arrives but fails the receiver's checksum; a duplicated
/// one was delivered twice (the copy charged on the link, discarded by
/// receive-side dedup); a reordered one is held past its successor in
/// the receive queue before delivery.
struct Datagram {
  Transfer wire;
  sim::Picos delivered_at = 0;  ///< wire.end plus any reorder hold
  bool delivered = false;       ///< false: dropped, or the endpoint is down
  bool corrupt = false;         ///< link-level checksum fails at receive
  bool duplicated = false;
  bool reordered = false;
};

/// Outcome of one reliable end-to-end send (Fabric::send): checksummed
/// payload, ack/timeout with bounded exponential-backoff retransmission,
/// receive-side dedup. status is kSuccess or kErrorRetransmitExhausted.
struct ReliableTransfer {
  Transfer wire;                ///< the attempt whose payload was accepted
  sim::Picos delivered_at = 0;  ///< payload verified at the receiver
  sim::Picos end = 0;           ///< sender completion (ack, or final timeout)
  std::uint32_t attempts = 1;   ///< payload transmissions performed
  std::uint32_t retransmits = 0;
  bool reordered = false;
  /// End-to-end corruption of a bulk payload that slipped past the link
  /// checksum (caught only by application-level digest verification —
  /// the evacuation-blob integrity path).
  bool payload_corrupt = false;
  Status status = Status::kSuccess;
};

/// Reliability-protocol tally, kept independently of the registry the
/// same way FabricTotals is.
struct ReliableTotals {
  std::uint64_t sends = 0;            ///< reliable send() calls
  std::uint64_t retransmits = 0;      ///< payload re-transmissions
  std::uint64_t recovered_sends = 0;  ///< succeeded after >= 1 retransmit
  std::uint64_t exhausted = 0;        ///< retry budget spent; send failed
  std::uint64_t drops = 0;            ///< datagrams lost in flight
  std::uint64_t corruptions = 0;      ///< link-level checksum failures
  std::uint64_t dup_discards = 0;     ///< deliveries discarded by dedup
  std::uint64_t reorders = 0;         ///< deliveries held out of order
  std::uint64_t acks = 0;             ///< ack/NAK messages charged
  std::uint64_t e2e_corruptions = 0;  ///< bulk payloads corrupted end-to-end
};

/// Fabric-side tally kept independently of the metrics registry, so
/// bench_observability can cross-check registry counters against it the
/// way it checks MemSysMetrics against the Tracer.
struct FabricTotals {
  std::array<std::uint64_t, kProtocols> msgs{};
  std::array<std::uint64_t, kProtocols> bytes{};
  std::uint64_t rndv_handshakes = 0;
  std::uint64_t flapped_msgs = 0;  ///< messages dilated by an open flap window

  [[nodiscard]] std::uint64_t total_msgs() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t m : msgs) n += m;
    return n;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t b : bytes) n += b;
    return n;
  }
};

class Fabric {
 public:
  /// Throws StatusError{kErrorNetConfig} if \p spec fails validation,
  /// \p endpoints is zero, a flap window's schedule is malformed (negative
  /// start or a window whose end precedes its start, i.e. negative
  /// duration), or \p messages fails its validation; and
  /// StatusError{kErrorInvalidValue} if a flap window names an endpoint
  /// outside the fabric or has a factor < 1. When \p reg is non-null,
  /// per-protocol, per-link and reliability instruments are registered
  /// there (ghum_net_*) and incremented on every transfer.
  explicit Fabric(NetSpec spec, std::uint32_t endpoints,
                  obs::MetricsRegistry* reg = nullptr,
                  std::vector<fault::LinkFlapWindow> flaps = {},
                  fault::MessageFaultConfig messages = {});

  /// Charges one \p bytes-sized message src -> dst starting no earlier
  /// than \p now. Selects the protocol, applies any open flap window,
  /// queues behind in-flight traffic on the same directed link, advances
  /// the link horizon and records history. \p ctx is the causal trace
  /// context the message carries across the node boundary (null =
  /// untraced); it does not affect cost or digest, only the transfer log.
  /// Throws StatusError{kErrorInvalidValue} on src == dst or out-of-range
  /// ids.
  Transfer transfer(std::uint32_t src, std::uint32_t dst, std::uint64_t bytes,
                    MemType mem, sim::Picos now,
                    const obs::TraceContext* ctx = nullptr);

  /// One unreliable datagram under the message-fault schedule: charges a
  /// transfer() (plus a second copy when the link duplicates it) and
  /// draws the message's fate from the directed link's seeded RNG stream.
  /// With messages disabled the fate is always clean delivery. A datagram
  /// to a down endpoint is charged but never delivered. Heartbeat probes
  /// ride this path — an unacked message whose loss the sender cannot
  /// distinguish from a dead peer.
  Datagram datagram(std::uint32_t src, std::uint32_t dst, std::uint64_t bytes,
                    MemType mem, sim::Picos now,
                    const obs::TraceContext* ctx = nullptr);

  /// Reliable end-to-end send: per-transfer FNV-1a payload checksum
  /// verified at receive, ack (or NAK, on a checksum failure) on the
  /// reverse link, receive-side dedup of duplicated deliveries, and
  /// bounded retransmission — attempt k waits ack_timeout * 2^(k-1)
  /// before retrying, up to max_retransmits retries. Exhaustion returns
  /// status kErrorRetransmitExhausted (to a down endpoint this is the
  /// guaranteed outcome — nothing acks). Bulk payloads (bytes >=
  /// bulk_threshold) may additionally arrive corrupted end-to-end
  /// (payload_corrupt): past the link checksum, caught only by the
  /// caller's own digest verification.
  ReliableTransfer send(std::uint32_t src, std::uint32_t dst,
                        std::uint64_t bytes, MemType mem, sim::Picos now,
                        const obs::TraceContext* ctx = nullptr);

  /// True when a message-fault schedule is active on this fabric.
  [[nodiscard]] bool lossy() const noexcept { return msg_.enabled; }

  /// Physical endpoint liveness. A down endpoint receives nothing and
  /// acks nothing — the fabric-level truth of a silently dead node, which
  /// callers can only observe through missed heartbeats and exhausted
  /// retransmit budgets. Out-of-range ids are ignored.
  void set_endpoint_down(std::uint32_t ep, bool down) noexcept {
    if (ep < endpoints_) down_[ep] = down;
  }
  [[nodiscard]] bool endpoint_down(std::uint32_t ep) const noexcept {
    return ep < endpoints_ && down_[ep] != 0;
  }

  [[nodiscard]] const ReliableTotals& reliable_totals() const noexcept {
    return rtotals_;
  }
  [[nodiscard]] const fault::MessageFaultConfig& message_faults()
      const noexcept {
    return msg_;
  }

  /// When enabled, every transfer appends a TransferRecord to log().
  void set_log_enabled(bool on) noexcept { log_enabled_ = on; }
  [[nodiscard]] const std::vector<TransferRecord>& log() const noexcept {
    return log_;
  }

  /// Total bytes charged on the directed link src -> dst so far — the
  /// per-link utilization source the flight recorder samples (always
  /// maintained, registry or not).
  [[nodiscard]] std::uint64_t link_bytes_moved(std::uint32_t src,
                                               std::uint32_t dst) const noexcept {
    const auto it = link_tally_.find(std::uint64_t{src} * endpoints_ + dst);
    return it == link_tally_.end() ? 0 : it->second;
  }

  /// Protocol the spec selects for a message (no link or flap state).
  [[nodiscard]] Protocol select(std::uint64_t bytes, MemType mem) const;

  /// Undilated one-message cost of \p proto (link-idle, no flap): the
  /// pure cost model, exposed so tests can verify crossovers exactly.
  [[nodiscard]] sim::Picos cost(Protocol proto, std::uint64_t bytes,
                                MemType mem) const;

  [[nodiscard]] const NetSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint32_t endpoints() const noexcept { return endpoints_; }
  [[nodiscard]] const FabricTotals& totals() const noexcept { return totals_; }

  /// FNV-1a over the complete transfer history (src, dst, bytes, memtype,
  /// protocol, start, end). Two identical transfer sequences => identical
  /// digests; any cost or ordering divergence changes it.
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

 private:
  struct Dilation {
    double bandwidth_factor = 1.0;
    double latency_factor = 1.0;
    bool flapped = false;
  };

  [[nodiscard]] Dilation dilation(std::uint32_t src, std::uint32_t dst,
                                  sim::Picos at) const noexcept;
  [[nodiscard]] sim::Picos dilated_cost(Protocol proto, std::uint64_t bytes,
                                        MemType mem, const Dilation& d,
                                        sim::Picos* handshake) const;
  void mix(std::uint64_t v) noexcept;

  [[nodiscard]] sim::Rng& link_rng(std::uint64_t link);

  NetSpec spec_;
  std::uint32_t endpoints_ = 0;
  std::vector<fault::LinkFlapWindow> flaps_;
  fault::MessageFaultConfig msg_;
  /// Per-directed-link fate streams, lazily seeded from (msg_.seed, link).
  std::map<std::uint64_t, sim::Rng> link_rng_;
  std::map<std::uint64_t, std::uint64_t> next_seq_;      ///< sender sequence
  std::map<std::uint64_t, std::uint64_t> delivered_up_to_;  ///< dedup floor
  std::vector<std::uint8_t> down_;  ///< endpoint liveness (fabric truth)
  std::uint64_t bulk_sends_ = 0;    ///< fabric-wide bulk send order
  ReliableTotals rtotals_;
  /// Directed-link serialization horizons, keyed src * endpoints + dst.
  /// Sparse map: fleets are small but a full N^2 array would still be
  /// wasteful for the mostly-idle control links.
  std::map<std::uint64_t, sim::Picos> busy_until_;

  FabricTotals totals_;
  std::uint64_t digest_ = 0xcbf29ce484222325ull;
  std::map<std::uint64_t, std::uint64_t> link_tally_;  ///< bytes per link
  bool log_enabled_ = false;
  std::vector<TransferRecord> log_;

  // Instruments (null when no registry was given).
  std::array<obs::Counter*, kProtocols> msgs_{};
  std::array<obs::Counter*, kProtocols> bytes_{};
  std::array<obs::Counter*, kProtocols> selected_{};
  obs::Histogram* handshake_ns_ = nullptr;
  obs::Histogram* latency_ns_ = nullptr;
  obs::Counter* flapped_ = nullptr;
  obs::Counter* retransmits_ = nullptr;
  obs::Counter* recovered_ = nullptr;
  obs::Counter* exhausted_ = nullptr;
  obs::Counter* dropped_ = nullptr;
  obs::Counter* corrupt_ = nullptr;
  obs::Counter* dup_discards_ = nullptr;
  obs::Counter* reordered_ = nullptr;
  obs::Counter* acks_ = nullptr;
  obs::Counter* e2e_corrupt_ = nullptr;
  obs::MetricsRegistry* reg_ = nullptr;
  std::map<std::uint64_t, obs::Counter*> link_bytes_;
};

}  // namespace ghum::net
