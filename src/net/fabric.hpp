#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "fault/fleet_fault.hpp"
#include "net/net_spec.hpp"
#include "obs/fleet_trace.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

/// \file fabric.hpp
/// net::Fabric — a deterministic inter-superchip network (DESIGN.md
/// Section 12). Endpoints are numbered 0..N-1; every ordered pair is a
/// directed link with its own serialization horizon, so concurrent
/// transfers on one link queue behind each other deterministically (the
/// fabric's congestion model: full serialization per directed link, the
/// same discipline the NVLink-C2C model uses per direction). Each message
/// is charged one of the four UCX protocols selected per NetSpec, with
/// cuda-managed payloads paying the gdrcopy/rkey_ptr staging costs of the
/// Grace Hopper ucx.conf section. fault::LinkFlapWindow schedules dilate
/// the costs of affected links while the window is open — the fleet-level
/// mirror of NVLink degradation windows.
///
/// Everything is replayable: same spec + same transfer sequence => the
/// same per-message costs, the same serialization order and the same
/// history digest (tests/test_net.cpp and bench_netscope gate this).

namespace ghum::net {

/// Outcome of one charged message.
struct Transfer {
  Protocol proto = Protocol::kEagerShort;
  sim::Picos start = 0;      ///< when the link accepted it (>= requested time)
  sim::Picos end = 0;        ///< delivery completion at the receiver
  sim::Picos queued = 0;     ///< start - requested time (link serialization)
  sim::Picos handshake = 0;  ///< rendezvous rts/rtr round trip (0 otherwise)
};

/// One logged transfer (recorded when set_log_enabled(true)): the wire
/// record plus the causal trace context it carried — what the fleet
/// trace exporter turns into duration events and cross-node flow-chain
/// members.
struct TransferRecord {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t bytes = 0;
  MemType mem = MemType::kHost;
  Protocol proto = Protocol::kEagerShort;
  sim::Picos start = 0;
  sim::Picos end = 0;
  obs::TraceContext ctx;
};

/// Fabric-side tally kept independently of the metrics registry, so
/// bench_observability can cross-check registry counters against it the
/// way it checks MemSysMetrics against the Tracer.
struct FabricTotals {
  std::array<std::uint64_t, kProtocols> msgs{};
  std::array<std::uint64_t, kProtocols> bytes{};
  std::uint64_t rndv_handshakes = 0;
  std::uint64_t flapped_msgs = 0;  ///< messages dilated by an open flap window

  [[nodiscard]] std::uint64_t total_msgs() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t m : msgs) n += m;
    return n;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t b : bytes) n += b;
    return n;
  }
};

class Fabric {
 public:
  /// Throws StatusError{kErrorNetConfig} if \p spec fails validation or
  /// \p endpoints is zero, and StatusError{kErrorInvalidValue} if a flap
  /// window names an endpoint outside the fabric or has a factor < 1.
  /// When \p reg is non-null, per-protocol and per-link instruments are
  /// registered there (ghum_net_*) and incremented on every transfer.
  explicit Fabric(NetSpec spec, std::uint32_t endpoints,
                  obs::MetricsRegistry* reg = nullptr,
                  std::vector<fault::LinkFlapWindow> flaps = {});

  /// Charges one \p bytes-sized message src -> dst starting no earlier
  /// than \p now. Selects the protocol, applies any open flap window,
  /// queues behind in-flight traffic on the same directed link, advances
  /// the link horizon and records history. \p ctx is the causal trace
  /// context the message carries across the node boundary (null =
  /// untraced); it does not affect cost or digest, only the transfer log.
  /// Throws StatusError{kErrorInvalidValue} on src == dst or out-of-range
  /// ids.
  Transfer transfer(std::uint32_t src, std::uint32_t dst, std::uint64_t bytes,
                    MemType mem, sim::Picos now,
                    const obs::TraceContext* ctx = nullptr);

  /// When enabled, every transfer appends a TransferRecord to log().
  void set_log_enabled(bool on) noexcept { log_enabled_ = on; }
  [[nodiscard]] const std::vector<TransferRecord>& log() const noexcept {
    return log_;
  }

  /// Total bytes charged on the directed link src -> dst so far — the
  /// per-link utilization source the flight recorder samples (always
  /// maintained, registry or not).
  [[nodiscard]] std::uint64_t link_bytes_moved(std::uint32_t src,
                                               std::uint32_t dst) const noexcept {
    const auto it = link_tally_.find(std::uint64_t{src} * endpoints_ + dst);
    return it == link_tally_.end() ? 0 : it->second;
  }

  /// Protocol the spec selects for a message (no link or flap state).
  [[nodiscard]] Protocol select(std::uint64_t bytes, MemType mem) const;

  /// Undilated one-message cost of \p proto (link-idle, no flap): the
  /// pure cost model, exposed so tests can verify crossovers exactly.
  [[nodiscard]] sim::Picos cost(Protocol proto, std::uint64_t bytes,
                                MemType mem) const;

  [[nodiscard]] const NetSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint32_t endpoints() const noexcept { return endpoints_; }
  [[nodiscard]] const FabricTotals& totals() const noexcept { return totals_; }

  /// FNV-1a over the complete transfer history (src, dst, bytes, memtype,
  /// protocol, start, end). Two identical transfer sequences => identical
  /// digests; any cost or ordering divergence changes it.
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

 private:
  struct Dilation {
    double bandwidth_factor = 1.0;
    double latency_factor = 1.0;
    bool flapped = false;
  };

  [[nodiscard]] Dilation dilation(std::uint32_t src, std::uint32_t dst,
                                  sim::Picos at) const noexcept;
  [[nodiscard]] sim::Picos dilated_cost(Protocol proto, std::uint64_t bytes,
                                        MemType mem, const Dilation& d,
                                        sim::Picos* handshake) const;
  void mix(std::uint64_t v) noexcept;

  NetSpec spec_;
  std::uint32_t endpoints_ = 0;
  std::vector<fault::LinkFlapWindow> flaps_;
  /// Directed-link serialization horizons, keyed src * endpoints + dst.
  /// Sparse map: fleets are small but a full N^2 array would still be
  /// wasteful for the mostly-idle control links.
  std::map<std::uint64_t, sim::Picos> busy_until_;

  FabricTotals totals_;
  std::uint64_t digest_ = 0xcbf29ce484222325ull;
  std::map<std::uint64_t, std::uint64_t> link_tally_;  ///< bytes per link
  bool log_enabled_ = false;
  std::vector<TransferRecord> log_;

  // Instruments (null when no registry was given).
  std::array<obs::Counter*, kProtocols> msgs_{};
  std::array<obs::Counter*, kProtocols> bytes_{};
  std::array<obs::Counter*, kProtocols> selected_{};
  obs::Histogram* handshake_ns_ = nullptr;
  obs::Histogram* latency_ns_ = nullptr;
  obs::Counter* flapped_ = nullptr;
  obs::MetricsRegistry* reg_ = nullptr;
  std::map<std::uint64_t, obs::Counter*> link_bytes_;
};

}  // namespace ghum::net
