#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "mem/node.hpp"
#include "tenant/tenant_id.hpp"

/// \file address_space.hpp
/// The process virtual address space: VMA bookkeeping plus the *real* host
/// backing storage for every allocation. Simulated virtual addresses are
/// plain 64-bit integers handed out by a bump allocator; each VMA owns a
/// host buffer so application kernels compute real, testable results while
/// the memory system charges simulated costs.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::os {

/// Allocation categories of paper Table 1.
enum class AllocKind : std::uint8_t {
  kSystem,      ///< malloc(): system page table, CPU or GPU resident
  kManaged,     ///< cudaMallocManaged(): system PT or GPU PT by location
  kGpuOnly,     ///< cudaMalloc(): GPU page table, GPU memory only
  kPinnedHost,  ///< cudaMallocHost()/numa_alloc_onnode(): CPU memory only
};

[[nodiscard]] std::string_view to_string(AllocKind k) noexcept;

struct Vma {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  AllocKind kind = AllocKind::kSystem;
  std::string label;

  /// cudaHostRegister()-style pre-population was applied.
  bool host_registered = false;

  /// Tenant that created this allocation (kNoTenant outside co-scheduling).
  /// Eviction attribution reads this to identify the victim's owner.
  tenant::TenantId tenant = tenant::kNoTenant;

  /// cudaMemAdvise state. kSetPreferredLocation overrides first-touch
  /// placement and resists migration (both counter-based and on-demand);
  /// kSetReadMostly enables read duplication for managed ranges.
  std::optional<mem::Node> preferred_location;
  bool read_mostly = false;

  /// Residency accounting, maintained by the Machine's transition helpers.
  std::uint64_t resident_cpu_bytes = 0;
  std::uint64_t resident_gpu_bytes = 0;

  /// A GPU channel reset killed the context while this allocation had
  /// device-resident state: its contents are lost and every subsequent
  /// access throws StatusError{kErrorGpuReset}. Only free_buffer (and the
  /// recovery scrub built on it) accepts a poisoned VMA.
  bool poisoned = false;

  /// Real backing storage (uninitialized; simulated first-touch zeroes are
  /// modeled in time only — kernels must initialize what they read, as the
  /// apps do).
  std::unique_ptr<std::byte[]> data;

  [[nodiscard]] std::uint64_t end() const noexcept { return base + size; }
  [[nodiscard]] bool contains(std::uint64_t va) const noexcept {
    return va >= base && va < end();
  }
  [[nodiscard]] std::byte* host_ptr(std::uint64_t va) noexcept {
    return data.get() + (va - base);
  }
};

class AddressSpace {
 public:
  /// Creates a VMA of \p size bytes aligned to \p alignment (power of two).
  /// The VA range includes a trailing guard gap so adjacent VMAs never
  /// share a page at any supported page size.
  Vma& create(std::uint64_t size, AllocKind kind, std::uint64_t alignment,
              std::string label);

  /// Destroys the VMA starting at \p base (throws if absent).
  void destroy(std::uint64_t base);

  /// VMA containing \p va, or nullptr.
  [[nodiscard]] Vma* find(std::uint64_t va);
  [[nodiscard]] const Vma* find(std::uint64_t va) const;

  /// VMA whose base is exactly \p base, or nullptr.
  [[nodiscard]] Vma* find_exact(std::uint64_t base);

  [[nodiscard]] std::size_t vma_count() const noexcept { return vmas_.size(); }

  /// Sum of resident bytes on the CPU across all VMAs — the process RSS
  /// as the paper's profiler reads from /proc/<pid>/smaps_rollup.
  [[nodiscard]] std::uint64_t rss_bytes() const noexcept { return rss_; }

  /// Residency aggregates are maintained through these (Machine calls them
  /// whenever pages are mapped/unmapped/migrated).
  void note_resident_delta(Vma& vma, std::int64_t cpu_delta, std::int64_t gpu_delta);

  /// Whether create() allocates host backing for new VMAs (set once by
  /// core::Machine from SystemConfig::materialize_backing). When off,
  /// Vma::data stays null and only page-granular accounting is simulated.
  void set_materialize(bool m) noexcept { materialize_ = m; }
  [[nodiscard]] bool materialize() const noexcept { return materialize_; }

  /// Tenant stamped on subsequently created VMAs (set by core::Machine when
  /// a scheduler quantum begins; kNoTenant otherwise).
  void set_current_tenant(tenant::TenantId t) noexcept { current_tenant_ = t; }
  [[nodiscard]] tenant::TenantId current_tenant() const noexcept {
    return current_tenant_;
  }

  /// Iteration support (ordered by base address).
  [[nodiscard]] auto begin() const { return vmas_.begin(); }
  [[nodiscard]] auto end() const { return vmas_.end(); }
  [[nodiscard]] auto begin() { return vmas_.begin(); }
  [[nodiscard]] auto end() { return vmas_.end(); }

 private:
  static constexpr std::uint64_t kVaStart = 0x10'0000'0000ull;
  static constexpr std::uint64_t kGuard = 2ull << 20;  ///< max page size gap

  std::map<std::uint64_t, Vma> vmas_;  // keyed by base
  std::uint64_t next_va_ = kVaStart;
  std::uint64_t rss_ = 0;
  bool materialize_ = true;
  tenant::TenantId current_tenant_ = tenant::kNoTenant;

  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::os
