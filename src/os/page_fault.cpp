#include "os/page_fault.hpp"

#include <stdexcept>

#include "fault/fault_injector.hpp"
#include "fault/status.hpp"

namespace ghum::os {

mem::Node PageFaultHandler::first_touch(Vma& vma, std::uint64_t va,
                                        mem::Node origin) {
  // The fault is a causal root: fallback placements (and, for managed
  // callers, migrations) it triggers inherit its span.
  sim::SpanScope span{m_->events()};
  const sim::Picos fault_start = m_->clock().now();
  const auto& costs = m_->config().costs;
  // cudaMemAdvise(kSetPreferredLocation) overrides first-touch placement
  // for system allocations; managed ranges handle advice in the driver
  // (their GPU-side residency lives in the GPU page table, not here).
  mem::Node placed = vma.kind == AllocKind::kSystem
                         ? vma.preferred_location.value_or(origin)
                         : origin;
  if (!m_->map_system_page(vma, va, placed)) {
    // Preferred node exhausted (or the allocation was transiently denied by
    // fault injection): the OS falls back to the other node rather than
    // failing the fault. For GPU first-touch under oversubscription this
    // leaves the page CPU-resident, accessed remotely over C2C — system
    // memory never evicts (paper Section 7). The fallback attempt is the
    // resilience response, so injection is suppressed for it.
    placed = mem::other(placed);
    fault::FaultInjector::ScopedSuppress guard{m_->fault_injector()};
    if (!m_->map_system_page(vma, va, placed)) {
      m_->stats().add("os.fault.oom");
      m_->metrics().oom_events->inc();
      if (m_->events().enabled()) {
        m_->events().record(sim::Event{.time = m_->clock().now(),
                                       .type = sim::EventType::kOutOfMemory,
                                       .va = m_->system_pt().page_base(va),
                                       .bytes = m_->system_page_bytes(),
                                       .aux = 0});
      }
      throw StatusError{Status::kErrorOutOfMemory,
                        "PageFaultHandler: out of physical memory on both nodes"};
    }
    m_->stats().add("os.fault.fallback");
    m_->metrics().fallback_placements->inc();
    if (m_->events().enabled()) {
      m_->events().record(sim::Event{.time = m_->clock().now(),
                                     .type = sim::EventType::kFallbackPlacement,
                                     .va = m_->system_pt().page_base(va),
                                     .bytes = m_->system_page_bytes(),
                                     .aux = static_cast<std::uint32_t>(placed)});
    }
  }

  ++fault_count_[static_cast<int>(origin)];
  m_->attribution().note_fault(vma.tenant, origin == mem::Node::kGpu);
  const sim::Picos handle = origin == mem::Node::kCpu ? costs.cpu_minor_fault
                                                      : costs.gpu_replayable_fault;
  const sim::Picos zero =
      sim::transfer_time(m_->system_page_bytes(), costs.fault_zero_bandwidth_Bps);
  m_->clock().advance(handle + zero);

  auto& events = m_->events();
  if (events.enabled()) {
    events.record(sim::Event{
        .time = m_->clock().now(),
        .type = origin == mem::Node::kCpu ? sim::EventType::kCpuFirstTouchFault
                                          : sim::EventType::kGpuFirstTouchFault,
        .va = m_->system_pt().page_base(va),
        .bytes = m_->system_page_bytes(),
        .aux = 0,
    });
  }
  m_->stats().add(origin == mem::Node::kCpu ? "os.fault.cpu_first_touch"
                                            : "os.fault.gpu_first_touch");
  auto& met = m_->metrics();
  if (origin == mem::Node::kCpu) {
    met.faults_cpu_first_touch->inc();
    met.fault_latency_cpu_first_touch->observe(
        static_cast<std::uint64_t>(m_->clock().now() - fault_start));
  } else {
    met.faults_gpu_first_touch->inc();
    met.fault_latency_gpu_first_touch->observe(
        static_cast<std::uint64_t>(m_->clock().now() - fault_start));
  }
  return placed;
}

bool PageFaultHandler::host_register(Vma& vma) {
  const auto& costs = m_->config().costs;
  const std::uint64_t page = m_->system_pt().page_size();
  m_->clock().advance(costs.host_register_base);

  const std::uint64_t pages = (vma.size + page - 1) / page;
  const auto r = m_->map_system_range(vma, vma.base, pages, mem::Node::kCpu);
  const std::uint64_t populated = r.mapped;
  const bool complete = r.complete;
  if (!complete) {
    // CPU frames exhausted (or an injected transient denial): population
    // stopped. Pages mapped so far stay mapped — the remainder of the
    // range keeps faulting on demand, which is slower but correct.
    // Registration is only recorded on full success.
    m_->stats().add("os.host_register.partial");
  }
  const sim::Picos zero = sim::transfer_time(page, costs.fault_zero_bandwidth_Bps);
  m_->clock().advance((costs.host_register_per_page + zero) *
                      static_cast<sim::Picos>(populated));
  if (complete) vma.host_registered = true;

  auto& events = m_->events();
  if (events.enabled()) {
    events.record(sim::Event{.time = m_->clock().now(),
                             .type = sim::EventType::kHostRegister,
                             .va = vma.base,
                             .bytes = populated * page,
                             .aux = complete ? 0u : 1u});
  }
  m_->stats().add("os.host_register.pages", populated);
  m_->metrics().host_registers->inc();
  return complete;
}

}  // namespace ghum::os
