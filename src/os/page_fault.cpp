#include "os/page_fault.hpp"

#include <stdexcept>

namespace ghum::os {

mem::Node PageFaultHandler::first_touch(Vma& vma, std::uint64_t va,
                                        mem::Node origin) {
  const auto& costs = m_->config().costs;
  // cudaMemAdvise(kSetPreferredLocation) overrides first-touch placement
  // for system allocations; managed ranges handle advice in the driver
  // (their GPU-side residency lives in the GPU page table, not here).
  mem::Node placed = vma.kind == AllocKind::kSystem
                         ? vma.preferred_location.value_or(origin)
                         : origin;
  if (!m_->map_system_page(vma, va, placed)) {
    // Preferred node exhausted: the OS falls back to the other node rather
    // than failing the fault. For GPU first-touch under oversubscription
    // this leaves the page CPU-resident, accessed remotely over C2C —
    // system memory never evicts (paper Section 7).
    placed = mem::other(placed);
    if (!m_->map_system_page(vma, va, placed)) {
      throw std::runtime_error{"PageFaultHandler: out of physical memory on both nodes"};
    }
  }

  ++fault_count_[static_cast<int>(origin)];
  const sim::Picos handle = origin == mem::Node::kCpu ? costs.cpu_minor_fault
                                                      : costs.gpu_replayable_fault;
  const sim::Picos zero =
      sim::transfer_time(m_->system_page_bytes(), costs.fault_zero_bandwidth_Bps);
  m_->clock().advance(handle + zero);

  auto& events = m_->events();
  if (events.enabled()) {
    events.record(sim::Event{
        .time = m_->clock().now(),
        .type = origin == mem::Node::kCpu ? sim::EventType::kCpuFirstTouchFault
                                          : sim::EventType::kGpuFirstTouchFault,
        .va = m_->system_pt().page_base(va),
        .bytes = m_->system_page_bytes(),
        .aux = 0,
    });
  }
  m_->stats().add(origin == mem::Node::kCpu ? "os.fault.cpu_first_touch"
                                            : "os.fault.gpu_first_touch");
  return placed;
}

void PageFaultHandler::host_register(Vma& vma) {
  const auto& costs = m_->config().costs;
  const std::uint64_t page = m_->system_pt().page_size();
  m_->clock().advance(costs.host_register_base);

  std::uint64_t populated = 0;
  for (std::uint64_t va = vma.base; va < vma.end(); va += page) {
    if (m_->system_pt().lookup(va) != nullptr) continue;
    if (!m_->map_system_page(vma, va, mem::Node::kCpu)) {
      throw std::runtime_error{"host_register: CPU memory exhausted"};
    }
    ++populated;
    const sim::Picos zero = sim::transfer_time(page, costs.fault_zero_bandwidth_Bps);
    m_->clock().advance(costs.host_register_per_page + zero);
  }
  vma.host_registered = true;

  auto& events = m_->events();
  if (events.enabled()) {
    events.record(sim::Event{.time = m_->clock().now(),
                             .type = sim::EventType::kHostRegister,
                             .va = vma.base,
                             .bytes = populated * page,
                             .aux = 0});
  }
  m_->stats().add("os.host_register.pages", populated);
}

}  // namespace ghum::os
