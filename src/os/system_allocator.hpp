#pragma once

#include <string>

#include "core/machine.hpp"

/// \file system_allocator.hpp
/// The system-level allocator: the malloc()/free() path of paper
/// Section 2.2. Allocation creates a VMA without assigning physical
/// memory (pages materialize at first touch); deallocation tears down
/// every *present* PTE, which is where the strong 4 KiB vs 64 KiB
/// asymmetry of paper Figure 6 comes from.
///
/// The same VMA mechanics back the pinned-host allocations
/// (cudaMallocHost / numa_alloc_onnode of Table 1), which are eagerly
/// populated on the CPU and never migrate.

namespace ghum::os {

class SystemAllocator {
 public:
  explicit SystemAllocator(core::Machine& m) : m_(&m) {}

  /// malloc(): lazy system allocation. Charges VMA-creation time only.
  Vma& allocate(std::uint64_t bytes, std::string label);

  /// cudaMallocHost()-style pinned allocation: eagerly populated on CPU.
  Vma& allocate_pinned(std::uint64_t bytes, std::string label);

  /// free(): releases every present page (charging per-PTE teardown and
  /// shootdown costs) and destroys the VMA. Valid for kSystem, kManaged
  /// and kPinnedHost VMAs — the system-page teardown path is the same;
  /// managed GPU blocks are the caller's (driver's) business and must be
  /// released before calling this.
  void deallocate(Vma& vma);

 private:
  core::Machine* m_;
};

}  // namespace ghum::os
