#include "os/system_allocator.hpp"

#include <algorithm>
#include <stdexcept>

#include "fault/status.hpp"

namespace ghum::os {

Vma& SystemAllocator::allocate(std::uint64_t bytes, std::string label) {
  const auto& costs = m_->config().costs;
  const std::uint64_t page = m_->system_pt().page_size();
  const std::uint64_t pages = (bytes + page - 1) / page;
  Vma& vma = m_->address_space().create(bytes, AllocKind::kSystem,
                                        std::max<std::uint64_t>(page, 64 << 10),
                                        std::move(label));
  m_->clock().advance(costs.malloc_base +
                      costs.alloc_per_page * static_cast<sim::Picos>(pages));
  auto& events = m_->events();
  if (events.enabled()) {
    events.record(sim::Event{.time = m_->clock().now(),
                             .type = sim::EventType::kAllocation,
                             .va = vma.base,
                             .bytes = bytes,
                             .aux = static_cast<std::uint32_t>(vma.kind)});
  }
  return vma;
}

Vma& SystemAllocator::allocate_pinned(std::uint64_t bytes, std::string label) {
  const auto& costs = m_->config().costs;
  const std::uint64_t page = m_->system_pt().page_size();
  Vma& vma = m_->address_space().create(bytes, AllocKind::kPinnedHost,
                                        std::max<std::uint64_t>(page, 64 << 10),
                                        std::move(label));
  m_->clock().advance(costs.malloc_base);
  // Pinned memory is populated and locked at allocation time. mlock is
  // all-or-nothing: on exhaustion the partially populated VMA is unwound
  // and the allocation fails cleanly (no leaked frames or VA range).
  const std::uint64_t pages = (bytes + page - 1) / page;
  const auto r = m_->map_system_range(vma, vma.base, pages, mem::Node::kCpu);
  if (!r.complete) {
    (void)m_->unmap_system_range(vma, vma.base, pages);
    m_->address_space().destroy(vma.base);
    throw StatusError{Status::kErrorMemoryAllocation,
                      "allocate_pinned: CPU memory exhausted"};
  }
  const sim::Picos zero = sim::transfer_time(page, costs.fault_zero_bandwidth_Bps);
  m_->clock().advance((costs.host_register_per_page + zero) *
                      static_cast<sim::Picos>(r.mapped));
  return vma;
}

void SystemAllocator::deallocate(Vma& vma) {
  const auto& costs = m_->config().costs;
  const std::uint64_t page = m_->system_pt().page_size();
  const std::uint64_t pages = (vma.size + page - 1) / page;
  const std::uint64_t torn_down =
      m_->unmap_system_range(vma, vma.base, pages).total();
  m_->clock().advance(costs.unmap_base +
                      costs.unmap_per_page * static_cast<sim::Picos>(torn_down));
  if (vma.resident_gpu_bytes != 0 || vma.resident_cpu_bytes != 0) {
    throw std::logic_error{"SystemAllocator::deallocate: residual residency"};
  }
  auto& events = m_->events();
  if (events.enabled()) {
    events.record(sim::Event{.time = m_->clock().now(),
                             .type = sim::EventType::kDeallocation,
                             .va = vma.base,
                             .bytes = vma.size,
                             .aux = 0});
  }
  m_->stats().add("os.dealloc.pages", torn_down);
  m_->address_space().destroy(vma.base);
}

}  // namespace ghum::os
