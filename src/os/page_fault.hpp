#pragma once

#include "core/machine.hpp"

/// \file page_fault.hpp
/// OS page-fault policy for the system page table (paper Section 2.2).
/// First-touch placement: the faulting page is mapped on the node the
/// access originated from. A CPU first-touch is an ordinary minor fault;
/// a GPU first-touch arrives as a *replayable* SMMU fault that a CPU core
/// handles before the GPU access is replayed — substantially more
/// expensive, which is the root cause of the slow GPU-side initialization
/// with system memory (paper Sections 5.1.2 and 5.2).

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::os {

class PageFaultHandler {
 public:
  explicit PageFaultHandler(core::Machine& m) : m_(&m) {}

  /// Handles a first-touch fault at \p va from \p origin: places the page
  /// per first-touch policy (falling back to the other node when the
  /// preferred node is out of frames), charges the fault-handling and
  /// page-clearing time, and logs the event. Returns the placed node.
  mem::Node first_touch(Vma& vma, std::uint64_t va, mem::Node origin);

  /// cudaHostRegister-style PTE pre-population of a whole VMA on the CPU
  /// (the Section 5.1.2 optimization for GPU-initialized applications).
  /// Pages already present are skipped. Charges registration costs.
  /// Returns false when CPU frames ran out part-way: already-populated
  /// pages stay mapped, the rest keep faulting on demand, and the VMA is
  /// not marked host_registered.
  bool host_register(Vma& vma);

  /// Number of first-touch faults handled, by origin.
  [[nodiscard]] std::uint64_t faults(mem::Node origin) const noexcept {
    return fault_count_[static_cast<int>(origin)];
  }

 private:
  core::Machine* m_;
  std::uint64_t fault_count_[2]{};

  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::os
