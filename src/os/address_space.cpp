#include "os/address_space.hpp"

#include <bit>
#include <stdexcept>

namespace ghum::os {

std::string_view to_string(AllocKind k) noexcept {
  switch (k) {
    case AllocKind::kSystem: return "system";
    case AllocKind::kManaged: return "managed";
    case AllocKind::kGpuOnly: return "gpu_only";
    case AllocKind::kPinnedHost: return "pinned_host";
  }
  return "unknown";
}

Vma& AddressSpace::create(std::uint64_t size, AllocKind kind,
                          std::uint64_t alignment, std::string label) {
  if (size == 0) throw std::invalid_argument{"AddressSpace::create: zero size"};
  if (alignment == 0 || !std::has_single_bit(alignment)) {
    throw std::invalid_argument{"AddressSpace::create: bad alignment"};
  }
  const std::uint64_t base = (next_va_ + alignment - 1) & ~(alignment - 1);
  next_va_ = base + size + kGuard;

  Vma vma;
  vma.base = base;
  vma.size = size;
  vma.kind = kind;
  vma.label = std::move(label);
  vma.tenant = current_tenant_;
  if (materialize_) vma.data = std::make_unique<std::byte[]>(size);

  auto [it, inserted] = vmas_.emplace(base, std::move(vma));
  if (!inserted) throw std::logic_error{"AddressSpace::create: VA collision"};
  return it->second;
}

void AddressSpace::destroy(std::uint64_t base) {
  auto it = vmas_.find(base);
  if (it == vmas_.end()) throw std::invalid_argument{"AddressSpace::destroy: no such VMA"};
  rss_ -= it->second.resident_cpu_bytes;
  vmas_.erase(it);
}

Vma* AddressSpace::find(std::uint64_t va) {
  auto it = vmas_.upper_bound(va);
  if (it == vmas_.begin()) return nullptr;
  --it;
  return it->second.contains(va) ? &it->second : nullptr;
}

const Vma* AddressSpace::find(std::uint64_t va) const {
  auto it = vmas_.upper_bound(va);
  if (it == vmas_.begin()) return nullptr;
  --it;
  return it->second.contains(va) ? &it->second : nullptr;
}

Vma* AddressSpace::find_exact(std::uint64_t base) {
  auto it = vmas_.find(base);
  return it == vmas_.end() ? nullptr : &it->second;
}

void AddressSpace::note_resident_delta(Vma& vma, std::int64_t cpu_delta,
                                       std::int64_t gpu_delta) {
  vma.resident_cpu_bytes = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(vma.resident_cpu_bytes) + cpu_delta);
  vma.resident_gpu_bytes = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(vma.resident_gpu_bytes) + gpu_delta);
  rss_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(rss_) + cpu_delta);
}

}  // namespace ghum::os
