#pragma once

#include <cstdint>
#include <string>

#include "mem/node.hpp"
#include "sim/time.hpp"

/// \file memory_device.hpp
/// Bandwidth/latency model of one physical memory tier (HBM3 or LPDDR5X).
/// Default parameters come from the paper's own microbenchmarks
/// (Section 2.1): HBM3 reaches 3.4 TB/s with STREAM (4 TB/s theoretical),
/// LPDDR5X reaches 486 GB/s (500 GB/s theoretical).

namespace ghum::mem {

struct DeviceSpec {
  std::string name;
  Node node = Node::kCpu;
  std::uint64_t capacity_bytes = 0;
  double read_bandwidth_Bps = 0.0;   ///< sustained read bandwidth, bytes/s
  double write_bandwidth_Bps = 0.0;  ///< sustained write bandwidth, bytes/s
  sim::Picos access_latency = 0;     ///< first-word latency for one request
};

/// Accounts capacity and converts byte volumes to simulated durations.
/// Frame bookkeeping (which page owns which bytes) lives in
/// FrameAllocator; this class only models the device itself.
class MemoryDevice {
 public:
  explicit MemoryDevice(DeviceSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }

  /// Time to stream \p bytes of reads from this device.
  [[nodiscard]] sim::Picos read_time(std::uint64_t bytes) const {
    return sim::transfer_time(bytes, spec_.read_bandwidth_Bps);
  }
  /// Time to stream \p bytes of writes to this device.
  [[nodiscard]] sim::Picos write_time(std::uint64_t bytes) const {
    return sim::transfer_time(bytes, spec_.write_bandwidth_Bps);
  }

  [[nodiscard]] sim::Picos latency() const noexcept { return spec_.access_latency; }

 private:
  DeviceSpec spec_;
};

/// Paper-measured device presets. Capacity is a parameter because the
/// reproduction runs at scaled capacities (DESIGN.md Section 4) while
/// keeping bandwidths unscaled.
[[nodiscard]] DeviceSpec hbm3_spec(std::uint64_t capacity_bytes);
[[nodiscard]] DeviceSpec lpddr5x_spec(std::uint64_t capacity_bytes);

}  // namespace ghum::mem
