#pragma once

#include <cstdint>

#include "mem/node.hpp"

/// \file frame_allocator.hpp
/// Physical-frame accounting for one NUMA node. The simulator does not model
/// physical addresses (data lives in one host backing buffer per virtual
/// allocation); what matters for the paper's experiments is *how many bytes
/// are resident on which tier*, which drives residency decisions
/// (first-touch placement, oversubscription fallbacks, eviction pressure)
/// and the memory-profiler time series (paper Figures 4 and 5).

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::mem {

class FrameAllocator {
 public:
  FrameAllocator(Node node, std::uint64_t capacity_bytes)
      : node_(node), capacity_(capacity_bytes) {}

  [[nodiscard]] Node node() const noexcept { return node_; }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t free_bytes() const noexcept { return capacity_ - used_; }

  /// A permanently resident baseline (the ~600 MB GPU-driver footprint the
  /// paper's profiler observes via nvidia-smi, scaled). Counts toward used().
  void reserve_baseline(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t baseline() const noexcept { return baseline_; }

  /// Tries to claim \p bytes of frames; returns false when the node is full.
  [[nodiscard]] bool allocate(std::uint64_t bytes);
  void release(std::uint64_t bytes);

  /// Permanently retires free frames (uncorrectable ECC): capacity shrinks
  /// by the returned amount, bounded by what is currently free. Callers
  /// that must retire in-use frames first vacate them (remap/evict the
  /// resident pages) and then retire. peak_used() is re-clamped to the
  /// shrunken capacity so utilization ratios stay <= 1 after retirement.
  std::uint64_t retire(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t retired_bytes() const noexcept { return retired_; }

  /// Lifetime counters for reporting.
  [[nodiscard]] std::uint64_t total_allocated() const noexcept { return total_allocated_; }
  [[nodiscard]] std::uint64_t peak_used() const noexcept { return peak_used_; }

 private:
  Node node_;
  std::uint64_t capacity_ = 0;
  std::uint64_t used_ = 0;
  std::uint64_t baseline_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t total_allocated_ = 0;
  std::uint64_t peak_used_ = 0;

  /// used_ <= capacity_ must hold after every mutation; free_bytes() and
  /// peak_used() are derived from it and silently corrupt reports if it
  /// ever breaks (e.g. a retire() racing a stale free_bytes() reading).
  void check_invariant() const;

  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::mem
