#include "mem/memory_device.hpp"

namespace ghum::mem {

DeviceSpec hbm3_spec(std::uint64_t capacity_bytes) {
  return DeviceSpec{
      .name = "HBM3",
      .node = Node::kGpu,
      .capacity_bytes = capacity_bytes,
      // Paper Section 2.1: STREAM-measured 3.4 TB/s (theoretical 4 TB/s).
      .read_bandwidth_Bps = 3.4e12,
      .write_bandwidth_Bps = 3.4e12,
      .access_latency = sim::nanoseconds(350),
  };
}

DeviceSpec lpddr5x_spec(std::uint64_t capacity_bytes) {
  return DeviceSpec{
      .name = "LPDDR5X",
      .node = Node::kCpu,
      .capacity_bytes = capacity_bytes,
      // Paper Section 2.1: STREAM-measured 486 GB/s (theoretical 500 GB/s).
      .read_bandwidth_Bps = 486e9,
      .write_bandwidth_Bps = 486e9,
      .access_latency = sim::nanoseconds(110),
  };
}

}  // namespace ghum::mem
