#pragma once

#include <cstdint>
#include <string_view>

/// \file node.hpp
/// The Grace Hopper two-tier memory system is exposed as two NUMA nodes
/// (paper Section 2.1): node 0 is the Grace CPU with LPDDR5X, node 1 is the
/// Hopper GPU with HBM3.

namespace ghum::mem {

enum class Node : std::uint8_t {
  kCpu = 0,  ///< Grace CPU, LPDDR5X tier
  kGpu = 1,  ///< Hopper GPU, HBM3 tier
};

[[nodiscard]] constexpr Node other(Node n) noexcept {
  return n == Node::kCpu ? Node::kGpu : Node::kCpu;
}

[[nodiscard]] constexpr std::string_view to_string(Node n) noexcept {
  return n == Node::kCpu ? "cpu" : "gpu";
}

}  // namespace ghum::mem
