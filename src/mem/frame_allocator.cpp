#include "mem/frame_allocator.hpp"

#include <stdexcept>

namespace ghum::mem {

void FrameAllocator::reserve_baseline(std::uint64_t bytes) {
  if (!allocate(bytes)) {
    throw std::runtime_error{"FrameAllocator: baseline exceeds capacity"};
  }
  baseline_ += bytes;
}

bool FrameAllocator::allocate(std::uint64_t bytes) {
  if (used_ + bytes > capacity_) return false;
  used_ += bytes;
  total_allocated_ += bytes;
  if (used_ > peak_used_) peak_used_ = used_;
  return true;
}

std::uint64_t FrameAllocator::retire(std::uint64_t bytes) {
  const std::uint64_t take = std::min(bytes, free_bytes());
  capacity_ -= take;
  retired_ += take;
  return take;
}

void FrameAllocator::release(std::uint64_t bytes) {
  if (bytes > used_) throw std::logic_error{"FrameAllocator: release underflow"};
  used_ -= bytes;
}

}  // namespace ghum::mem
