#include "mem/frame_allocator.hpp"

#include <algorithm>
#include <stdexcept>

namespace ghum::mem {

void FrameAllocator::check_invariant() const {
  if (used_ > capacity_) {
    throw std::logic_error{"FrameAllocator: used exceeds capacity"};
  }
}

void FrameAllocator::reserve_baseline(std::uint64_t bytes) {
  if (!allocate(bytes)) {
    throw std::runtime_error{"FrameAllocator: baseline exceeds capacity"};
  }
  baseline_ += bytes;
}

bool FrameAllocator::allocate(std::uint64_t bytes) {
  // Compare against the remaining headroom: `used_ + bytes > capacity_`
  // wraps for huge requests and would admit them.
  if (bytes > capacity_ - used_) return false;
  used_ += bytes;
  total_allocated_ += bytes;
  if (used_ > peak_used_) peak_used_ = used_;
  check_invariant();
  return true;
}

std::uint64_t FrameAllocator::retire(std::uint64_t bytes) {
  const std::uint64_t take = std::min(bytes, free_bytes());
  capacity_ -= take;
  retired_ += take;
  if (peak_used_ > capacity_) peak_used_ = capacity_;
  check_invariant();
  return take;
}

void FrameAllocator::release(std::uint64_t bytes) {
  if (bytes > used_) throw std::logic_error{"FrameAllocator: release underflow"};
  used_ -= bytes;
  check_invariant();
}

}  // namespace ghum::mem
