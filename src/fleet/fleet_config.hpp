#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "apps/app_common.hpp"
#include "core/system_config.hpp"
#include "fault/fleet_fault.hpp"
#include "net/net_spec.hpp"
#include "obs/alerts.hpp"
#include "tenant/scheduler.hpp"

/// \file fleet_config.hpp
/// Configuration of the simulated superchip fleet (DESIGN.md Section 11):
/// job templates and requests, the open-loop arrival process, and the
/// fleet::Controller's placement / transfer / retry / admission knobs.

namespace ghum::fleet {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = ~0u;

/// How the controller picks a node for a new placement.
enum class PlacementPolicy : std::uint8_t {
  /// Tightest fit by declared footprint: the node with the least remaining
  /// footprint headroom that still fits the job (classic bin packing —
  /// concentrates load, keeps whole nodes free for big jobs).
  kBinPack,
  /// Least predicted local completion time: the node whose local clock
  /// plus estimated backlog (sum of resident jobs' predicted solo costs)
  /// is earliest — spreads latency instead of footprint.
  kLoadBalance,
};

[[nodiscard]] constexpr std::string_view to_string(PlacementPolicy p) noexcept {
  switch (p) {
    case PlacementPolicy::kBinPack: return "bin-pack";
    case PlacementPolicy::kLoadBalance: return "load-balance";
  }
  return "?";
}

/// One kind of job the fleet serves: an app x memory-mode instance with
/// the footprint it declares at admission and the predicted solo runtime
/// the load-balance policy and the deadline generator both use. The
/// factory must be stateless and replayable — node loss rebuilds the
/// coroutine from it on another machine, and determinism of the replayed
/// result (equal checksum) is gated by bench_fleet.
struct JobTemplate {
  std::string name;
  apps::MemMode mode = apps::MemMode::kManaged;
  std::function<apps::AppCoro(runtime::Runtime&)> make;
  std::uint64_t footprint_bytes = 0;
  /// Predicted solo runtime (bench_fleet measures it from solo runs).
  sim::Picos est_cost = 0;
  /// Reference output digest of an uninterrupted solo run; 0 = unknown.
  /// The controller checks every finished job against it when set.
  std::uint64_t solo_checksum = 0;
};

/// One generated request of the open-loop arrival process.
struct JobRequest {
  std::uint64_t id = 0;        ///< unique, dense from 0 (indexes Controller::jobs())
  sim::Picos arrival = 0;      ///< fleet-time arrival
  std::uint32_t tmpl = 0;      ///< index into the template catalog
  std::uint32_t priority = 0;  ///< 0 = top class (tighter SLO, never shed)
  sim::Picos deadline = 0;     ///< absolute fleet-time SLO deadline
  std::uint32_t replicas = 1;  ///< anti-affinity: replicas on distinct nodes
};

/// Open-loop (arrivals never wait for completions) deterministic request
/// generator. Same seed + same templates => bit-identical request stream.
struct ArrivalConfig {
  std::uint64_t seed = 0xF1EE7ull;
  std::uint64_t count = 1000;
  /// Mean inter-arrival gap; gaps are uniform in [0, 2*mean] drawn from a
  /// dedicated sim::Rng (integer arithmetic only — cross-platform stable).
  sim::Picos mean_interarrival = sim::microseconds(200);
  std::uint32_t priority_classes = 3;
  /// Draw weight per class (index = class). Empty => uniform.
  std::vector<std::uint32_t> class_weights;
  /// Deadline = arrival + est_cost * factor[min(class, size-1)]. Top
  /// classes get looser factors here only if you want them loose — the
  /// default gives the top class the most headroom because bench_fleet's
  /// SLO gate demands zero top-class violations through a node-kill storm.
  std::vector<double> deadline_factor = {64.0, 24.0, 12.0};
  /// Minimum SLO headroom regardless of predicted cost: deadline =
  /// arrival + max(deadline_floor, est_cost * factor). A real latency SLO
  /// is a fixed target; a pure cost multiple gives short jobs physically
  /// impossible deadlines (one cold GPU context init can exceed them).
  sim::Picos deadline_floor = 0;
  /// Replica count for top-class (priority 0) requests; others get 1.
  std::uint32_t top_replicas = 1;
};

/// Fleet-wide observability (DESIGN.md Section 13): the deterministic
/// flight recorder, the SLO alert rules evaluated on it, and the causal
/// trace stream the Chrome exporter renders.
struct FleetObsConfig {
  /// Master switch. Off = no recorder, no alerts, no trace events —
  /// pre-PR-9 behavior bit-for-bit (digest() then mixes nothing new).
  bool enabled = false;
  /// Recorder sampling cadence in fleet time.
  sim::Picos cadence = sim::milliseconds(1);
  /// Samples retained per series (ring capacity).
  std::size_t ring_capacity = 4096;
  /// Sample per-directed-link fabric byte counters (one series per link
  /// that ever moved traffic plus the fleet total).
  bool track_links = true;
  /// Record FleetTraceEvents (arrivals, placements, faults, evacuations,
  /// transfers, alerts) for export_fleet_trace().
  bool record_trace = true;
  /// Declarative SLO alert rules; instruments name recorder series.
  std::vector<obs::AlertRule> alerts;
};

/// Heartbeat-based failure detection (DESIGN.md Section 14). With it off,
/// the controller learns of a node loss the instant it happens — the
/// omniscient pre-PR-10 model. With it on, the controller only believes
/// what the fabric tells it: every interval it probes each active node and
/// counts the response; a missed edge (probe or response dropped,
/// corrupted, late, or the endpoint silently dead) moves the node to
/// suspected — excluded from new placements but otherwise undisturbed —
/// and miss_threshold consecutive misses declare it dead and trigger the
/// node-loss recovery ladder. An on-time response clears suspicion (the
/// false-positive rejoin path: no replay, no double placement).
struct HeartbeatConfig {
  bool enabled = false;
  /// Probe cadence; the response must land before the *next* edge.
  sim::Picos interval = sim::microseconds(500);
  /// Consecutive missed edges before the node is declared dead.
  std::uint32_t miss_threshold = 3;
  /// Wire size of one probe and of one response.
  std::uint64_t heartbeat_bytes = 128;
};

struct FleetConfig {
  /// Active superchips at t=0.
  std::uint32_t nodes = 4;
  /// Powered-off replacements; evacuation targets for degraded nodes.
  std::uint32_t spares = 1;
  /// Per-node machine configuration (every node is identical).
  core::SystemConfig node_config;
  /// Per-node co-scheduler configuration. Policy kPriority is what makes
  /// the fleet's SLO story work — top-class jobs run first on every node.
  tenant::SchedulerConfig scheduler;
  PlacementPolicy placement = PlacementPolicy::kLoadBalance;

  /// Inter-node fabric cost model (DESIGN.md Section 12). The controller
  /// builds a net::Fabric with nodes + spares + 2 endpoints (the two extra
  /// are the external arrival source and the control plane) and charges
  /// live-migration blobs, arrival notifications and placement commands
  /// through it with full UCX-style protocol selection. Rejected at
  /// construction with Status::kErrorNetConfig if malformed.
  net::NetSpec net;
  /// Compatibility switch: model every inter-node transfer with the flat
  /// transfer_latency + size/bandwidth cost below instead of the fabric
  /// (pre-PR-8 behavior, bit-for-bit). Control messages are free in this
  /// mode, as they were then.
  bool legacy_transfer_cost = false;

  /// Flat inter-node state-transfer cost (checkpoint blob shipping, the
  /// ETH data-movement study's latency + size/bandwidth shape) — used only
  /// under legacy_transfer_cost.
  sim::Picos transfer_latency = sim::microseconds(10);
  double transfer_bandwidth_Bps = 25e9;  ///< conservative inter-node fabric

  /// Bounded re-placement of jobs lost with their node: up to this many
  /// attempts, the k-th scheduled replace_backoff * 2^(k-1) after the
  /// loss. Exhaustion fails the job with Status::kErrorNodeLost.
  std::uint32_t replace_max_retries = 3;
  sim::Picos replace_backoff = sim::microseconds(100);

  /// Admission control: priority classes below this index are never shed
  /// and never cancelled while running — the protected SLO tier.
  std::uint32_t shed_protect_classes = 1;
  /// Cancel running jobs (unprotected classes only) that blew past their
  /// deadline, freeing capacity for jobs that can still meet theirs.
  bool cancel_overdue = true;

  /// Controller-side per-node footprint budget for placement decisions.
  /// 0 = the machine's physical capacity (HBM + DDR).
  std::uint64_t node_footprint_budget = 0;

  fault::FleetFaultConfig faults;

  HeartbeatConfig heartbeat;

  FleetObsConfig obs;
};

}  // namespace ghum::fleet
