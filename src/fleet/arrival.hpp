#pragma once

#include <vector>

#include "fleet/fleet_config.hpp"

/// \file arrival.hpp
/// Deterministic open-loop arrival process for the fleet. Generates the
/// full request stream up front from a dedicated sim::Rng — arrivals never
/// react to fleet state (open loop), so overload genuinely piles up and
/// admission control has something to shed.

namespace ghum::fleet {

/// Generates \p cfg.count requests over \p templates: arrival times from
/// the integer inter-arrival draw, template and priority class from
/// weighted draws, deadlines from the template's predicted cost times the
/// class factor, replicas for the top class. Requests come back sorted by
/// arrival time with dense ids 0..count-1 (ties keep id order). Same
/// config + same templates => bit-identical stream.
[[nodiscard]] std::vector<JobRequest> generate_arrivals(
    const ArrivalConfig& cfg, const std::vector<JobTemplate>& templates);

}  // namespace ghum::fleet
