#include "fleet/controller.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "chk/snapshot.hpp"
#include "core/machine.hpp"
#include "core/system.hpp"
#include "fault/status.hpp"
#include "tenant/scheduler.hpp"

namespace ghum::fleet {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void mix(std::uint64_t& h, std::uint64_t x) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

void mix_bytes(std::uint64_t& h, std::string_view s) noexcept {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
}

std::vector<obs::Label> class_label(std::uint32_t cls) {
  return {{"class", std::to_string(cls)}};
}

/// Control-plane message sizes on the fabric: an arrival notification
/// (request descriptor) and a placement command (job spec reference).
/// Both sit in the eager regime — they exist so the control plane has a
/// modeled, flappable cost, not to move bulk data.
constexpr std::uint64_t kArrivalMsgBytes = 512;
constexpr std::uint64_t kPlacementMsgBytes = 256;

}  // namespace

Controller::Controller(FleetConfig cfg, std::vector<JobTemplate> templates)
    : cfg_(std::move(cfg)), templates_(std::move(templates)) {
  if (templates_.empty() || cfg_.nodes == 0) {
    throw StatusError{Status::kErrorInvalidValue,
                      "fleet: need at least one node and one job template"};
  }
  for (const auto& e : cfg_.faults.node_loss) {
    if (e.node >= cfg_.nodes) {
      throw StatusError{Status::kErrorInvalidValue,
                        "fleet: node-loss event names a node outside the fleet"};
    }
  }
  for (const auto& e : cfg_.faults.node_degrade) {
    if (e.node >= cfg_.nodes || e.slow_factor == 0) {
      throw StatusError{Status::kErrorInvalidValue,
                        "fleet: malformed node-degrade event"};
    }
  }
  const std::uint32_t machines = cfg_.nodes + cfg_.spares;
  for (const auto& w : cfg_.faults.link_flap) {
    const bool a_ok = w.node_a < machines;
    const bool b_ok =
        w.node_b == fault::LinkFlapWindow::kAllPeers || w.node_b < machines;
    if (!a_ok || !b_ok) {
      throw StatusError{Status::kErrorInvalidValue,
                        "fleet: link-flap window names a node outside the fleet"};
    }
  }
  if (cfg_.heartbeat.enabled) {
    if (cfg_.legacy_transfer_cost) {
      throw StatusError{Status::kErrorInvalidValue,
                        "fleet: heartbeat detection needs the fabric"};
    }
    if (cfg_.heartbeat.interval <= 0 || cfg_.heartbeat.miss_threshold == 0 ||
        cfg_.heartbeat.heartbeat_bytes == 0) {
      throw StatusError{Status::kErrorInvalidValue,
                        "fleet: malformed heartbeat config"};
    }
  }
  if (!cfg_.legacy_transfer_cost) {
    // nodes + spares machine endpoints, plus the external arrival source
    // and the control plane. Throws kErrorNetConfig on a malformed spec,
    // a malformed flap schedule or a malformed message-fault config, and
    // kErrorInvalidValue on a flap window with bad endpoints/factors.
    fabric_ = std::make_unique<net::Fabric>(cfg_.net, machines + 2, &reg_,
                                            cfg_.faults.link_flap,
                                            cfg_.faults.messages);
  }

  nodes_.resize(cfg_.nodes + cfg_.spares);
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].id = i;
    if (i < cfg_.nodes) activate(nodes_[i]);
  }

  arrivals_ = &reg_.counter("ghum_fleet_arrivals_total");
  placements_ = &reg_.counter("ghum_fleet_placements_total");
  finished_ = &reg_.counter("ghum_fleet_finished_total");
  shed_ = &reg_.counter("ghum_fleet_shed_total");
  node_losses_ = &reg_.counter("ghum_fleet_node_losses_total");
  node_degrades_ = &reg_.counter("ghum_fleet_node_degrades_total");
  evacuations_ = &reg_.counter("ghum_fleet_evacuations_total");
  migrated_jobs_ = &reg_.counter("ghum_fleet_migrated_jobs_total");
  migrated_bytes_ = &reg_.counter("ghum_fleet_migrated_bytes_total");
  replace_retries_ = &reg_.counter("ghum_fleet_replacement_retries_total");
  alerts_opened_ = &reg_.counter("ghum_fleet_alerts_opened_total");
  alerts_closed_ = &reg_.counter("ghum_fleet_alerts_closed_total");
  hb_probes_ = &reg_.counter("ghum_fleet_heartbeat_probes_total");
  hb_misses_ = &reg_.counter("ghum_fleet_heartbeat_misses_total");
  hb_suspects_ = &reg_.counter("ghum_fleet_heartbeat_suspects_total");
  hb_rejoins_ = &reg_.counter("ghum_fleet_heartbeat_rejoins_total");
  detected_losses_ = &reg_.counter("ghum_fleet_detected_losses_total");
  evac_corruptions_ = &reg_.counter("ghum_fleet_evac_corruptions_total");
  evac_rerequests_ = &reg_.counter("ghum_fleet_evac_rerequests_total");
  evac_replays_ = &reg_.counter("ghum_fleet_evac_replays_total");
}

void Controller::activate(Node& n) {
  n.sys = std::make_unique<core::System>(cfg_.node_config);
  n.sched = std::make_unique<tenant::Scheduler>(*n.sys, cfg_.scheduler);
  n.state = NodeState::kAlive;
  n.slow_factor = 1;
  n.placed_bytes = 0;
}

std::uint64_t Controller::node_budget() const noexcept {
  if (cfg_.node_footprint_budget != 0) return cfg_.node_footprint_budget;
  for (const Node& n : nodes_) {
    if (n.sched != nullptr) return n.sched->budget();
  }
  return 0;
}

sim::Picos Controller::transfer_cost(std::uint64_t bytes) const noexcept {
  return cfg_.transfer_latency +
         sim::transfer_time(bytes, cfg_.transfer_bandwidth_Bps);
}

void Controller::ensure_classes(std::uint32_t classes) {
  for (std::uint32_t c = static_cast<std::uint32_t>(latency_by_class_.size());
       c < classes; ++c) {
    violations_by_class_.push_back(
        &reg_.counter("ghum_fleet_slo_violations_total", class_label(c)));
    failed_by_class_.push_back(
        &reg_.counter("ghum_fleet_failed_total", class_label(c)));
    latency_by_class_.push_back(
        &reg_.histogram("ghum_fleet_job_latency_us", class_label(c)));
    wait_by_class_.push_back(
        &reg_.histogram("ghum_fleet_queue_wait_us", class_label(c)));
  }
}

// --- observability -----------------------------------------------------------

void Controller::trace(obs::FleetTraceEvent e) {
  if (obs_on() && cfg_.obs.record_trace) trace_.push_back(std::move(e));
}

void Controller::setup_obs() {
  if (!obs_on()) return;
  ts_ = std::make_unique<obs::TimeSeries>(cfg_.obs.cadence,
                                          cfg_.obs.ring_capacity);
  // Per-node vitals. Node structs are stable for the controller's life
  // (the vector is sized once at construction), so the samplers capture
  // plain pointers.
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    Node* n = &nodes_[i];
    const std::string p = "node" + std::to_string(i) + ".";
    ts_->add(p + "placed_bytes", [n] {
      return static_cast<std::int64_t>(n->placed_bytes);
    });
    ts_->add(p + "live_jobs", [n] {
      return static_cast<std::int64_t>(n->live.size());
    });
    ts_->add(p + "queue_depth", [n] {
      return n->sched == nullptr
                 ? 0
                 : static_cast<std::int64_t>(n->sched->queue_depth());
    });
    ts_->add(p + "gpu_used_bytes", [n] {
      return n->sys == nullptr
                 ? 0
                 : static_cast<std::int64_t>(n->sys->machine().gpu_used_bytes());
    });
  }
  ts_->add("fleet.pending_jobs", [this] {
    std::int64_t c = 0;
    for (const FleetJob& j : jobs_) {
      if (j.state == FleetJobState::kPending) ++c;
    }
    return c;
  });
  // Reliability vitals, only when the features are on — keeping the series
  // set (and with it the recorder digest) unchanged for existing configs.
  if (cfg_.heartbeat.enabled) {
    ts_->add("fleet.suspected_nodes", [this] {
      std::int64_t c = 0;
      for (const Node& n : nodes_) {
        if (n.suspected) ++c;
      }
      return c;
    });
  }
  if (fabric_ != nullptr && fabric_->lossy()) {
    ts_->add("fabric.retransmits", [this] {
      return static_cast<std::int64_t>(fabric_->reliable_totals().retransmits);
    });
  }
  // Per-class SLO attainment: on-time finishes per terminal job, in
  // permille. 1000 while a class has no terminal jobs yet.
  for (std::uint32_t c = 0;
       c < static_cast<std::uint32_t>(latency_by_class_.size()); ++c) {
    ts_->add("class" + std::to_string(c) + ".slo_attainment_permille",
             [this, c] {
               std::int64_t term = 0;
               std::int64_t ok = 0;
               for (const FleetJob& j : jobs_) {
                 if (j.req.priority != c || !j.terminal()) continue;
                 ++term;
                 if (!j.slo_violation) ++ok;
               }
               return term == 0 ? 1000 : ok * 1000 / term;
             });
  }
  if (cfg_.obs.track_links && fabric_ != nullptr) {
    ts_->add("fabric.total_bytes", [this] {
      return static_cast<std::int64_t>(fabric_->totals().total_bytes());
    });
    // Per-directed-link cumulative bytes — every machine pair plus the
    // external-source and control-plane endpoints. Bounded to small
    // fleets; a 480-node fleet keeps just the total above.
    const std::uint32_t eps = fabric_->endpoints();
    if (eps <= 16) {
      for (std::uint32_t s = 0; s < eps; ++s) {
        for (std::uint32_t d = 0; d < eps; ++d) {
          if (s == d) continue;
          ts_->add("link." + std::to_string(s) + "-" + std::to_string(d) +
                       ".bytes",
                   [this, s, d] {
                     return static_cast<std::int64_t>(
                         fabric_->link_bytes_moved(s, d));
                   });
        }
      }
    }
  }
  if (fabric_ != nullptr && cfg_.obs.record_trace) {
    fabric_->set_log_enabled(true);
  }
  alert_engine_ = std::make_unique<obs::AlertEngine>(*ts_, cfg_.obs.alerts);
}

void Controller::obs_tick(sim::Picos t) {
  if (ts_ == nullptr) return;
  ts_->advance(t);
  if (alert_engine_ == nullptr) return;
  alert_engine_->evaluate();
  const std::vector<obs::AlertEvent>& evs = alert_engine_->events();
  for (; alert_seen_ < evs.size(); ++alert_seen_) {
    const obs::AlertEvent& ae = evs[alert_seen_];
    const obs::AlertRule& r = alert_engine_->rules()[ae.rule];
    (ae.open ? alerts_opened_ : alerts_closed_)->inc();
    obs::FleetTraceEvent e;
    e.time = ae.time;
    e.kind = ae.open ? obs::FleetTraceKind::kAlertOpen
                     : obs::FleetTraceKind::kAlertClose;
    e.bytes = 0;
    e.label = r.name + " [" + std::string{obs::to_string(r.severity)} + "]";
    trace(std::move(e));
  }
}

obs::MetricsRegistry Controller::federated_metrics() {
  obs::MetricsRegistry out;
  out.merge_from(reg_, {{"node", "fleet"}});
  for (Node& n : nodes_) {
    if (n.sys == nullptr) continue;
    n.sys->machine().sync_obs_gauges();
    out.merge_from(n.sys->machine().obs(), {{"node", std::to_string(n.id)}});
  }
  return out;
}

std::string Controller::metrics_prometheus() {
  return federated_metrics().to_prometheus();
}

std::string Controller::metrics_json() { return federated_metrics().to_json(); }

const obs::MetricsRegistry* Controller::node_metrics(NodeId id) {
  if (id >= nodes_.size() || nodes_[id].sys == nullptr) return nullptr;
  nodes_[id].sys->machine().sync_obs_gauges();
  return &nodes_[id].sys->machine().obs();
}

std::string Controller::chrome_trace() const {
  std::vector<obs::FleetTraceEvent> evs = trace_;
  if (fabric_ != nullptr) {
    // Traced fabric messages (placement commands, evacuation images)
    // become duration events on the fabric lane and members of their root
    // span's flow chain — the visible wire hop between node lanes.
    for (const net::TransferRecord& r : fabric_->log()) {
      if (!r.ctx.traced()) continue;
      obs::FleetTraceEvent e;
      e.time = r.start;
      e.duration = r.end - r.start;
      e.kind = obs::FleetTraceKind::kTransfer;
      e.node = r.src;
      e.peer = r.dst;
      e.bytes = r.bytes;
      e.ctx = r.ctx;
      e.label = std::string{net::to_string(r.proto)};
      evs.push_back(std::move(e));
    }
  }
  for (const fault::LinkFlapWindow& w : cfg_.faults.link_flap) {
    obs::FleetTraceEvent e;
    e.time = w.start;
    e.duration = w.duration;
    e.kind = obs::FleetTraceKind::kLinkFlap;
    e.node = w.node_a;
    if (w.node_b != fault::LinkFlapWindow::kAllPeers) e.peer = w.node_b;
    e.label = w.node_b == fault::LinkFlapWindow::kAllPeers
                  ? std::to_string(w.node_a) + "-*"
                  : std::to_string(w.node_a) + "-" + std::to_string(w.node_b);
    evs.push_back(std::move(e));
  }
  return obs::export_fleet_trace(evs, cfg_.nodes + cfg_.spares);
}

// --- event loop --------------------------------------------------------------

bool Controller::step_node(Node& n) {
  const sim::Picos t0 = n.sys->now();
  if (!n.sched->step()) return false;
  if (n.slow_factor > 1) {
    const sim::Picos delta = n.sys->now() - t0;
    if (delta > 0) {
      n.sys->advance(delta * static_cast<sim::Picos>(n.slow_factor - 1));
    }
  }
  return true;
}

void Controller::run_nodes_until(sim::Picos t) {
  // Earliest-local-clock-first interleaving across nodes (ties: lowest
  // node id): nodes genuinely run concurrently, so the globally furthest-
  // behind node always steps next — the fleet-level analogue of the
  // scheduler's kMinLocalTime rule, and deterministic by construction.
  // Completions free footprint immediately: pending jobs are re-offered
  // capacity at the completing node's clock, never at the wait-until
  // bound \p t (which is +inf during the final drain).
  std::vector<bool> parked(nodes_.size(), false);  // step() said idle
  for (;;) {
    Node* best = nullptr;
    for (Node& n : nodes_) {
      if (n.state != NodeState::kAlive && n.state != NodeState::kDegraded) {
        continue;
      }
      // A silently dead node still *believed* alive has no machine to
      // step; its live list is the controller's stale belief, held in
      // limbo until the heartbeat detector declares the loss.
      if (n.sys == nullptr) continue;
      if (parked[n.id] || n.live.empty() || n.sys->now() >= t) continue;
      if (best == nullptr || n.sys->now() < best->sys->now()) best = &n;
    }
    if (best == nullptr) break;
    if (!step_node(*best)) {
      parked[best->id] = true;  // live but nothing runnable (queued-only)
      continue;
    }
    if (harvest(*best)) {
      try_place_pending(best->sys->now());
      std::fill(parked.begin(), parked.end(), false);  // placements wake nodes
    }
  }
}

sim::Picos Controller::fleet_now() const noexcept {
  sim::Picos now = 0;
  for (const Node& n : nodes_) {
    if (n.sys != nullptr) now = std::max(now, n.sys->now());
  }
  return now;
}

bool Controller::harvest(Node& n) {
  bool retired = false;
  for (std::size_t i = 0; i < n.live.size();) {
    const auto [tid, jidx] = n.live[i];
    const tenant::Job& tj = n.sched->job(tid);
    if (!tj.terminal()) {
      ++i;
      continue;
    }
    FleetJob& j = jobs_[jidx];
    retired = true;
    // Drop this replica regardless of what happens to the fleet job.
    n.live.erase(n.live.begin() + static_cast<std::ptrdiff_t>(i));
    n.placed_bytes -= std::min(n.placed_bytes, j.footprint);
    const auto r = std::find_if(
        j.replicas.begin(), j.replicas.end(),
        [&](const FleetJob::Replica& rep) {
          return rep.node == n.id && rep.tenant == tid;
        });
    if (r != j.replicas.end()) j.replicas.erase(r);

    if (j.terminal()) continue;  // late redundant replica; nothing more to do

    if (tj.state == tenant::JobState::kFinished) {
      j.completion_node = n.id;
      finish_job(j, tj);
      obs::FleetTraceEvent te;
      te.time = j.finished_at;
      te.kind = obs::FleetTraceKind::kJobFinish;
      te.node = n.id;
      te.tenant = tid;
      te.job = j.req.id;
      te.ctx = j.ctx;
      trace(std::move(te));
    } else if (j.replicas.empty()) {
      // Last live replica failed on-node (crash-recovery exhaustion or an
      // unrecoverable app fault): the fleet job fails with that cause.
      fail_job(j, tj.status == Status::kSuccess ? Status::kErrorUnrecoverable
                                                : tj.status,
               n.sys->now());
    }
    // else: another live replica keeps the job going (anti-affinity payoff).
  }
  return retired;
}

void Controller::finish_job(FleetJob& j, const tenant::Job& tj) {
  ensure_classes(j.req.priority + 1);
  j.state = FleetJobState::kFinished;
  j.finished_at = tj.finished_at;
  j.latency = j.finished_at - j.req.arrival;
  j.checksum = tj.report.checksum;
  finished_->inc();
  latency_by_class_[j.req.priority]->observe(
      static_cast<std::uint64_t>(j.latency / 1'000'000));  // picos -> us
  if (j.first_placed_at >= 0) {
    wait_by_class_[j.req.priority]->observe(
        static_cast<std::uint64_t>((j.first_placed_at - j.req.arrival) /
                                   1'000'000));
  }
  if (j.finished_at > j.req.deadline) {
    j.slo_violation = true;
    violations_by_class_[j.req.priority]->inc();
  }
}

void Controller::fail_job(FleetJob& j, Status why, sim::Picos now) {
  if (j.terminal()) return;
  ensure_classes(j.req.priority + 1);
  cancel_replicas(j, why);
  j.state = FleetJobState::kFailed;
  j.status = why;
  j.finished_at = now;
  j.slo_violation = true;
  failed_by_class_[j.req.priority]->inc();
  violations_by_class_[j.req.priority]->inc();
  obs::FleetTraceEvent te;
  te.time = now;
  te.kind = obs::FleetTraceKind::kJobFail;
  te.job = j.req.id;
  te.ctx = j.ctx;
  te.label = std::string{to_string(why)};
  trace(std::move(te));
  record(why);
}

void Controller::cancel_replicas(FleetJob& j, Status reason) {
  for (const FleetJob::Replica& r : j.replicas) {
    Node& n = nodes_[r.node];
    if (n.sched == nullptr) continue;  // node died with the replica
    (void)n.sched->cancel(r.tenant, reason);
    const auto it = std::find_if(
        n.live.begin(), n.live.end(),
        [&](const auto& p) { return p.first == r.tenant; });
    if (it != n.live.end()) n.live.erase(it);
    n.placed_bytes -= std::min(n.placed_bytes, j.footprint);
  }
  j.replicas.clear();
}

void Controller::expire_and_cancel_overdue(sim::Picos now) {
  for (FleetJob& j : jobs_) {
    if (j.terminal() || j.req.priority < cfg_.shed_protect_classes) continue;
    if (j.state == FleetJobState::kPending) {
      if (j.req.arrival <= now && j.req.deadline < now) {
        fail_job(j, Status::kErrorDeadlineExceeded, now);
      }
    } else if (cfg_.cancel_overdue && j.state == FleetJobState::kPlaced) {
      // A running job is overdue once every node executing it is past the
      // deadline — it can no longer finish in time anywhere.
      bool overdue = !j.replicas.empty();
      for (const FleetJob::Replica& r : j.replicas) {
        // A silently dead node's clock froze at its last observation;
        // its replicas resolve at detection, not here.
        const Node& rn = nodes_[r.node];
        const sim::Picos rnow = rn.sys != nullptr ? rn.sys->now() : rn.known_now;
        if (rnow <= j.req.deadline) overdue = false;
      }
      if (overdue) fail_job(j, Status::kErrorDeadlineExceeded, now);
    }
  }
}

// --- placement ---------------------------------------------------------------

NodeId Controller::pick_node(std::uint64_t footprint,
                             const std::vector<NodeId>& exclude) const {
  const std::uint64_t budget = node_budget();
  NodeId best = kNoNode;
  std::uint64_t best_fill = 0;       // kBinPack: max placed_bytes that fits
  sim::Picos best_eta = 0;           // kLoadBalance: min predicted completion
  for (const Node& n : nodes_) {
    if (n.state != NodeState::kAlive || n.suspected) continue;
    if (std::find(exclude.begin(), exclude.end(), n.id) != exclude.end()) {
      continue;
    }
    if (n.placed_bytes + footprint > budget) continue;
    if (cfg_.placement == PlacementPolicy::kBinPack) {
      if (best == kNoNode || n.placed_bytes > best_fill) {
        best = n.id;
        best_fill = n.placed_bytes;
      }
    } else {
      // known_now: an undetected silently dead node is still a candidate
      // (the controller believes it alive) at its last observed clock —
      // the placement send to it will exhaust and teach us otherwise.
      sim::Picos eta = n.sys != nullptr ? n.sys->now() : n.known_now;
      for (const auto& [tid, jidx] : n.live) {
        eta += templates_[jobs_[jidx].req.tmpl].est_cost;
      }
      if (best == kNoNode || eta < best_eta) {
        best = n.id;
        best_eta = eta;
      }
    }
  }
  return best;
}

bool Controller::place(FleetJob& j, sim::Picos now) {
  const JobTemplate& tmpl = templates_[j.req.tmpl];
  // Oversized-for-any-node is a property of the job, not of the moment —
  // but only judge it against a live node's budget. With the whole fleet
  // down, node_budget() is 0 and the job's true cause is the loss (or its
  // deadline), which the retry and drain paths attribute.
  const std::uint64_t budget = node_budget();
  if (budget > 0 && j.footprint > budget) {
    fail_job(j, Status::kErrorOutOfMemory, now);
    return false;
  }
  std::vector<NodeId> exclude;
  for (const FleetJob::Replica& r : j.replicas) exclude.push_back(r.node);

  const std::uint32_t want =
      std::max<std::uint32_t>(j.req.replicas, 1) -
      static_cast<std::uint32_t>(j.replicas.size());
  std::uint32_t placed = 0;
  for (std::uint32_t k = 0; k < want; ++k) {
    const NodeId nid = pick_node(j.footprint, exclude);
    if (nid == kNoNode) break;
    Node& n = nodes_[nid];
    // The placement command travels control plane -> node; the node can
    // only start the job once it has been delivered, so an idle node's
    // clock advances to the delivery instant (idle time is real time).
    sim::Picos start_at = now;
    if (fabric_ != nullptr) {
      // The command carries the job's trace context onto the node: the
      // causal chain's hop across the machine boundary.
      if (fabric_->lossy() || cfg_.heartbeat.enabled) {
        // A command must be *confirmed* delivered before the job counts
        // as placed — an exhausted retransmit budget is how the control
        // plane first learns a node is unreachable.
        const net::ReliableTransfer cmd = fabric_->send(
            ep_control(), nid, kPlacementMsgBytes, net::MemType::kHost, now,
            &j.ctx);
        if (cmd.status != Status::kSuccess) {
          record(cmd.status);
          if (cfg_.heartbeat.enabled) {
            mark_suspected(n, cmd.end, "placement send exhausted");
          }
          exclude.push_back(nid);
          continue;
        }
        start_at = cmd.delivered_at;
      } else {
        start_at = fabric_
                       ->transfer(ep_control(), nid, kPlacementMsgBytes,
                                  net::MemType::kHost, now, &j.ctx)
                       .end;
      }
    }
    if (n.sys->now() < start_at) n.sys->advance(start_at - n.sys->now());

    tenant::JobSpec spec;
    spec.name = tmpl.name;
    spec.mode = tmpl.mode;
    spec.make = tmpl.make;
    spec.footprint_bytes = j.footprint;
    spec.priority = -static_cast<int>(j.req.priority);  // class 0 most urgent
    tenant::TenantId tid = tenant::kNoTenant;
    if (n.sched->submit(std::move(spec), &tid) != Status::kSuccess) {
      exclude.push_back(nid);
      continue;
    }
    n.live.emplace_back(tid, static_cast<std::uint64_t>(&j - jobs_.data()));
    n.placed_bytes += j.footprint;
    j.replicas.push_back({nid, tid});
    exclude.push_back(nid);
    ++placed;
    placements_->inc();
    obs::FleetTraceEvent te;
    te.time = start_at;
    te.kind = obs::FleetTraceKind::kPlacement;
    te.node = nid;
    te.tenant = tid;
    te.job = j.req.id;
    te.ctx = j.ctx;
    te.label = tmpl.name;
    trace(std::move(te));
  }
  if (placed == 0) return false;
  j.placements += placed;
  j.state = FleetJobState::kPlaced;
  if (j.first_placed_at < 0) j.first_placed_at = now;
  return true;
}

void Controller::try_place_pending(sim::Picos now) {
  // Offer freed capacity to the most urgent class first, FIFO within it.
  std::vector<std::uint64_t> ready;
  for (std::uint64_t i = 0; i < jobs_.size(); ++i) {
    const FleetJob& j = jobs_[i];
    if (j.state != FleetJobState::kPending) continue;
    if (j.req.arrival > now || j.not_before > now) continue;
    ready.push_back(i);
  }
  std::sort(ready.begin(), ready.end(), [&](std::uint64_t a, std::uint64_t b) {
    const FleetJob& ja = jobs_[a];
    const FleetJob& jb = jobs_[b];
    return ja.req.priority != jb.req.priority
               ? ja.req.priority < jb.req.priority
               : a < b;
  });
  for (const std::uint64_t i : ready) {
    FleetJob& j = jobs_[i];
    if (!place(j, now) && !j.terminal()) {
      // Strict priority: no backfill past a blocked higher-priority job.
      // Without this, every completion's freed footprint is snapped up by
      // smaller low-priority jobs and a large top-class job waits forever
      // for headroom that never accumulates.
      break;
    }
  }
}

// --- fault domain ------------------------------------------------------------

void Controller::on_node_loss(const fault::NodeLossEvent& e) {
  Node& n = nodes_[e.node];
  if (n.state != NodeState::kAlive && n.state != NodeState::kDegraded) return;
  declare_loss(n, e.time);
}

void Controller::on_silent_death(const fault::NodeLossEvent& e) {
  Node& n = nodes_[e.node];
  if (n.state != NodeState::kAlive && n.state != NodeState::kDegraded) return;
  if (n.sys == nullptr) return;  // already silently dead
  // The machine and its fabric endpoint die right now; the controller's
  // belief (state, live jobs, placed bytes) stays frozen until the
  // heartbeat detector catches up. The victims sit in limbo — recovery
  // starts at detection time, not at death time.
  n.known_now = n.sys->now();
  n.sched.reset();
  n.sys.reset();
  n.silently_dead = true;
  if (fabric_ != nullptr) fabric_->set_endpoint_down(n.id, true);
}

void Controller::declare_loss(Node& n, sim::Picos time) {
  node_losses_->inc();

  // The loss re-roots every re-driven victim's causal chain at the dying
  // node: retries and the eventual re-placement elsewhere all carry it.
  obs::TraceContext fault_ctx;
  if (obs_on()) {
    fault_ctx.root_span = next_span_++;
    fault_ctx.origin_node = n.id;
    obs::FleetTraceEvent te;
    te.time = time;
    te.kind = obs::FleetTraceKind::kNodeLoss;
    te.node = n.id;
    te.ctx = fault_ctx;
    trace(std::move(te));
  }

  const std::vector<std::pair<tenant::TenantId, std::uint64_t>> victims =
      std::move(n.live);
  n.live.clear();
  // The machine dies with its in-flight state: scheduler first (owns the
  // coroutines and per-tenant runtimes), then the system they reference.
  // Under heartbeat detection the machine may already be gone (silent
  // death) — or still be running (a false positive pushed past the miss
  // threshold, the declared-dead-while-alive cost of a fallible detector).
  n.sched.reset();
  n.sys.reset();
  n.state = NodeState::kDead;
  n.placed_bytes = 0;
  n.suspected = false;
  n.silently_dead = false;
  if (fabric_ != nullptr) fabric_->set_endpoint_down(n.id, true);

  for (const auto& [tid, jidx] : victims) {
    FleetJob& j = jobs_[jidx];
    const auto r = std::find_if(
        j.replicas.begin(), j.replicas.end(),
        [&](const FleetJob::Replica& rep) { return rep.node == n.id; });
    if (r != j.replicas.end()) j.replicas.erase(r);
    if (j.terminal()) continue;
    if (!j.replicas.empty()) continue;  // a live replica elsewhere carries on

    // Replay elsewhere under the bounded backoff budget.
    j.state = FleetJobState::kPending;
    j.replayed_after_loss = true;
    if (obs_on()) j.ctx = fault_ctx;
    if (j.loss_attempts >= cfg_.replace_max_retries) {
      fail_job(j, Status::kErrorNodeLost, time);
      continue;
    }
    ++j.loss_attempts;
    j.not_before =
        time + cfg_.replace_backoff *
                   (sim::Picos{1} << (j.loss_attempts - 1));
    retries_.push_back({j.not_before, jidx});
    replace_retries_->inc();
    obs::FleetTraceEvent te;
    te.time = time;
    te.kind = obs::FleetTraceKind::kReplacementRetry;
    te.job = j.req.id;
    te.ctx = j.ctx;
    trace(std::move(te));
  }
  std::sort(retries_.begin(), retries_.end(), [](const Retry& a, const Retry& b) {
    return a.due != b.due ? a.due < b.due : a.job < b.job;
  });

  shed_to_capacity(time);
}

// --- failure detection -------------------------------------------------------

void Controller::mark_suspected(Node& n, sim::Picos t, std::string_view why) {
  if (n.suspected) return;
  n.suspected = true;
  hb_suspects_->inc();
  obs::FleetTraceEvent te;
  te.time = t;
  te.kind = obs::FleetTraceKind::kNodeSuspect;
  te.node = n.id;
  te.label = std::string{why};
  trace(std::move(te));
}

bool Controller::heartbeat_watch(bool losses_left) const noexcept {
  if (losses_left) return true;
  for (const Node& n : nodes_) {
    if (n.state != NodeState::kAlive && n.state != NodeState::kDegraded) {
      continue;
    }
    if (n.suspected || n.silently_dead) return true;
  }
  return false;
}

void Controller::heartbeat_tick(sim::Picos t) {
  const HeartbeatConfig& hb = cfg_.heartbeat;
  for (Node& n : nodes_) {
    if (n.state != NodeState::kAlive && n.state != NodeState::kDegraded) {
      continue;
    }
    // Probe out, response back — both plain datagrams, both subject to the
    // message-fault schedule. The edge is met only if the response lands
    // before the next edge; a dead endpoint, a dropped/corrupt probe or
    // response, and a response held too long by reordering all look the
    // same from the control plane: silence.
    hb_probes_->inc();
    const net::Datagram probe = fabric_->datagram(
        ep_control(), n.id, hb.heartbeat_bytes, net::MemType::kHost, t);
    bool on_time = false;
    if (probe.delivered && !probe.corrupt && n.sys != nullptr) {
      const net::Datagram resp =
          fabric_->datagram(n.id, ep_control(), hb.heartbeat_bytes,
                            net::MemType::kHost, probe.delivered_at);
      on_time = resp.delivered && !resp.corrupt &&
                resp.delivered_at <= t + hb.interval;
    }
    if (on_time) {
      n.hb_misses = 0;
      if (n.suspected) {
        // False positive resolved: the node answered in time, so it
        // rejoins the placement pool exactly as it was — its jobs kept
        // running throughout, nothing is replayed or double-placed.
        n.suspected = false;
        hb_rejoins_->inc();
        obs::FleetTraceEvent te;
        te.time = t;
        te.kind = obs::FleetTraceKind::kNodeRejoin;
        te.node = n.id;
        trace(std::move(te));
      }
      continue;
    }
    ++n.hb_misses;
    hb_misses_->inc();
    mark_suspected(n, t, "heartbeat miss");
    if (n.hb_misses >= hb.miss_threshold) {
      detected_losses_->inc();
      declare_loss(n, t);
    }
  }
}

void Controller::shed_to_capacity(sim::Picos now) {
  // Open-loop demand vs what the surviving fleet can hold: shed the
  // lowest-priority, youngest pending load until the rest fits. Protected
  // classes are never shed.
  std::uint64_t capacity = 0;
  for (const Node& n : nodes_) {
    if (n.state == NodeState::kAlive) capacity += node_budget();
  }
  std::uint64_t committed = 0;
  for (const Node& n : nodes_) committed += n.placed_bytes;
  std::uint64_t pending = 0;
  for (const FleetJob& j : jobs_) {
    if (j.state == FleetJobState::kPending && j.req.arrival <= now) {
      pending += j.footprint;
    }
  }
  while (committed + pending > capacity) {
    FleetJob* victim = nullptr;
    for (FleetJob& j : jobs_) {
      if (j.state != FleetJobState::kPending || j.req.arrival > now) continue;
      if (j.req.priority < cfg_.shed_protect_classes) continue;
      if (victim == nullptr ||
          j.req.priority > victim->req.priority ||
          (j.req.priority == victim->req.priority &&
           j.req.arrival > victim->req.arrival)) {
        victim = &j;
      }
    }
    if (victim == nullptr) break;
    pending -= std::min(pending, victim->footprint);
    obs::FleetTraceEvent te;
    te.time = now;
    te.kind = obs::FleetTraceKind::kShed;
    te.job = victim->req.id;
    te.ctx = victim->ctx;
    trace(std::move(te));
    fail_job(*victim, Status::kErrorNodeLost, now);
    shed_->inc();
  }
}

void Controller::on_node_degrade(const fault::NodeDegradeEvent& e) {
  Node& n = nodes_[e.node];
  if (n.state != NodeState::kAlive) return;
  node_degrades_->inc();
  n.state = NodeState::kDegraded;
  n.slow_factor = std::max(n.slow_factor, e.slow_factor);

  obs::TraceContext fault_ctx;
  if (obs_on()) {
    fault_ctx.root_span = next_span_++;
    fault_ctx.origin_node = e.node;
    obs::FleetTraceEvent te;
    te.time = e.time;
    te.kind = obs::FleetTraceKind::kNodeDegrade;
    te.node = e.node;
    te.ctx = fault_ctx;
    te.label = "x" + std::to_string(e.slow_factor);
    trace(std::move(te));
  }
  if (cfg_.faults.evacuate_degraded) evacuate(n, fault_ctx);
}

void Controller::evacuate(Node& n, const obs::TraceContext& ctx) {
  Node* spare = nullptr;
  for (Node& s : nodes_) {
    if (s.state == NodeState::kSpare) {
      spare = &s;
      break;
    }
  }
  if (spare == nullptr) return;  // keep limping along slow

  // Live migration: serialize the whole machine, ship it at the inter-node
  // transfer cost, restore onto the spare with the old machine as donor so
  // app-held host pointers survive, and re-point the scheduler. Every
  // resident job continues mid-flight (replay equivalence, PR 5).
  chk::Blob blob = chk::Snapshotter::snapshot(*n.sys);
  const sim::Picos ship_start = n.sys->now();
  sim::Picos ship_end = ship_start;
  bool blob_ok = true;
  if (fabric_ != nullptr) {
    if (fabric_->lossy()) {
      // On a lossy fabric the image goes through the reliable send path
      // (bulk enough for the e2e corruption model), and the spare runs
      // Snapshotter::verify before trusting a byte of it. A corrupted
      // image is re-requested once; a second corruption falls back to
      // the replay ladder below.
      net::ReliableTransfer t = fabric_->send(
          n.id, spare->id, blob.size(), net::MemType::kHost, ship_start, &ctx);
      blob_ok = t.status == Status::kSuccess && !t.payload_corrupt &&
                chk::Snapshotter::verify(blob);
      ship_end = t.status == Status::kSuccess ? t.delivered_at : t.end;
      if (!blob_ok) {
        if (t.payload_corrupt) evac_corruptions_->inc();
        evac_rerequests_->inc();
        t = fabric_->send(n.id, spare->id, blob.size(), net::MemType::kHost,
                          ship_end, &ctx);
        blob_ok = t.status == Status::kSuccess && !t.payload_corrupt &&
                  chk::Snapshotter::verify(blob);
        ship_end = t.status == Status::kSuccess ? t.delivered_at : t.end;
        if (!blob_ok && t.payload_corrupt) evac_corruptions_->inc();
      }
    } else {
      // The machine image ships donor -> spare as one bulk fabric message
      // (deep in the rendezvous regime for any real blob) carrying the
      // degrade fault's trace context; the spare resumes at delivery time.
      const net::Transfer t =
          fabric_->transfer(n.id, spare->id, blob.size(), net::MemType::kHost,
                            ship_start, &ctx);
      ship_end = t.end;
    }
  } else {
    ship_end = ship_start + transfer_cost(blob.size());
  }

  if (!blob_ok) {
    // Both copies of the image arrived corrupt: fall back to the replay
    // ladder. The spare boots fresh, every donor-resident job replays
    // from scratch on it (or wherever placement sends it), the donor
    // retires, and the corruption is surfaced through get_last_error.
    // Jobs on every other node are untouched.
    record(Status::kErrorDataCorruption);
    evac_replays_->inc();
    const std::vector<std::pair<tenant::TenantId, std::uint64_t>> victims =
        std::move(n.live);
    n.live.clear();
    n.sched.reset();
    n.sys.reset();
    n.state = NodeState::kRetired;
    n.placed_bytes = 0;
    activate(*spare);
    if (spare->sys->now() < ship_end) {
      spare->sys->advance(ship_end - spare->sys->now());
    }
    {
      obs::FleetTraceEvent te;
      te.time = ship_start;
      te.duration = ship_end - ship_start;
      te.kind = obs::FleetTraceKind::kEvacuation;
      te.node = n.id;
      te.peer = spare->id;
      te.bytes = blob.size();
      te.ctx = ctx;
      te.label = "image corrupt; replaying from scratch";
      trace(std::move(te));
    }
    for (const auto& [tid, jidx] : victims) {
      FleetJob& j = jobs_[jidx];
      const auto r = std::find_if(
          j.replicas.begin(), j.replicas.end(),
          [&](const FleetJob::Replica& rep) { return rep.node == n.id; });
      if (r != j.replicas.end()) j.replicas.erase(r);
      if (j.terminal() || !j.replicas.empty()) continue;
      j.state = FleetJobState::kPending;
      j.replayed_after_loss = true;
      j.not_before = ship_end;
      if (obs_on()) j.ctx = ctx;
      retries_.push_back({ship_end, jidx});
    }
    std::sort(retries_.begin(), retries_.end(),
              [](const Retry& a, const Retry& b) {
                return a.due != b.due ? a.due < b.due : a.job < b.job;
              });
    return;
  }

  spare->sys = chk::Snapshotter::restore(blob, n.sys.get());
  spare->sched = std::move(n.sched);
  spare->sched->rebind(*spare->sys);
  if (spare->sys->now() < ship_end) {
    spare->sys->advance(ship_end - spare->sys->now());
  }
  spare->state = NodeState::kAlive;
  spare->slow_factor = 1;
  spare->placed_bytes = n.placed_bytes;
  spare->live = std::move(n.live);

  n.sys.reset();
  n.state = NodeState::kRetired;
  n.placed_bytes = 0;
  n.live.clear();

  evacuations_->inc();
  migrated_bytes_->inc(blob.size());
  {
    obs::FleetTraceEvent te;
    te.time = ship_start;
    te.duration = ship_end - ship_start;
    te.kind = obs::FleetTraceKind::kEvacuation;
    te.node = n.id;
    te.peer = spare->id;
    te.bytes = blob.size();
    te.ctx = ctx;
    trace(std::move(te));
  }
  for (const auto& [tid, jidx] : spare->live) {
    FleetJob& j = jobs_[jidx];
    for (FleetJob::Replica& r : j.replicas) {
      if (r.node == n.id) r.node = spare->id;
    }
    if (!j.terminal()) {
      j.migrated = true;
      // The migrated job continues under the fault's root span: its
      // finish on the spare closes a chain opened on the donor.
      if (obs_on()) j.ctx = ctx;
      migrated_jobs_->inc();
    }
  }
}

// --- run ---------------------------------------------------------------------

Status Controller::run(const std::vector<JobRequest>& requests) {
  if (ran_) return record(Status::kErrorInvalidValue);
  ran_ = true;

  jobs_.clear();
  jobs_.reserve(requests.size());
  std::uint32_t classes = 1;
  for (const JobRequest& r : requests) {
    if (r.tmpl >= templates_.size()) {
      return record(Status::kErrorInvalidValue);
    }
    FleetJob j;
    j.req = r;
    j.footprint = templates_[r.tmpl].footprint_bytes;
    if (obs_on()) {
      // Every request opens a root span at the external source; fleet
      // faults that re-drive the job re-root it at the faulted node.
      j.ctx.root_span = next_span_++;
      j.ctx.origin_node = obs::TraceContext::kExternal;
    }
    jobs_.push_back(std::move(j));
    classes = std::max(classes, r.priority + 1);
  }
  ensure_classes(classes);
  setup_obs();

  auto losses = cfg_.faults.node_loss;
  std::sort(losses.begin(), losses.end(),
            [](const auto& a, const auto& b) {
              return a.time != b.time ? a.time < b.time : a.node < b.node;
            });
  auto degrades = cfg_.faults.node_degrade;
  std::sort(degrades.begin(), degrades.end(),
            [](const auto& a, const auto& b) {
              return a.time != b.time ? a.time < b.time : a.node < b.node;
            });

  std::size_t li = 0, di = 0, ai = 0;
  // Heartbeat edges fire at k * interval while there is anything to watch:
  // scheduled losses still pending, an undetected silent death, or an open
  // suspicion. Eliding the probes once the watch clears is what bounds the
  // final drain — and when the watch re-opens, the edge clock re-aligns to
  // the grid instead of replaying skipped edges.
  const bool hb_on = cfg_.heartbeat.enabled && fabric_ != nullptr;
  sim::Picos next_hb = cfg_.heartbeat.interval;
  constexpr sim::Picos kNever = std::numeric_limits<sim::Picos>::max();
  for (;;) {
    // Next fleet event in deterministic (time, kind) order: loss before
    // degrade before heartbeat before retry before arrival at equal times.
    const sim::Picos tl = li < losses.size() ? losses[li].time : kNever;
    const sim::Picos td = di < degrades.size() ? degrades[di].time : kNever;
    const sim::Picos th =
        hb_on && heartbeat_watch(li < losses.size()) ? next_hb : kNever;
    const sim::Picos tr = !retries_.empty() ? retries_.front().due : kNever;
    const sim::Picos ta = ai < requests.size() ? requests[ai].arrival : kNever;
    const sim::Picos t =
        std::min(std::min(std::min(tl, td), th), std::min(tr, ta));
    if (t == kNever) break;

    run_nodes_until(t);
    expire_and_cancel_overdue(t);
    obs_tick(t);

    if (tl == t) {
      // With detection on, a loss is *silent*: the machine dies now, the
      // controller only learns of it through missed heartbeats.
      if (hb_on) {
        on_silent_death(losses[li++]);
      } else {
        on_node_loss(losses[li++]);
      }
    } else if (td == t) {
      on_node_degrade(degrades[di++]);
    } else if (th == t) {
      heartbeat_tick(t);
      next_hb += cfg_.heartbeat.interval;
    } else if (tr == t) {
      const std::uint64_t jidx = retries_.front().job;
      retries_.erase(retries_.begin());
      FleetJob& j = jobs_[jidx];
      if (!j.terminal() && j.state == FleetJobState::kPending) {
        if (!place(j, t)) {
          if (j.loss_attempts >= cfg_.replace_max_retries) {
            fail_job(j, Status::kErrorNodeLost, t);
          } else {
            ++j.loss_attempts;
            j.not_before =
                t + cfg_.replace_backoff *
                        (sim::Picos{1} << (j.loss_attempts - 1));
            retries_.push_back({j.not_before, jidx});
            std::sort(retries_.begin(), retries_.end(),
                      [](const Retry& a, const Retry& b) {
                        return a.due != b.due ? a.due < b.due : a.job < b.job;
                      });
            replace_retries_->inc();
            obs::FleetTraceEvent e;
            e.time = t;
            e.kind = obs::FleetTraceKind::kReplacementRetry;
            e.job = j.req.id;
            e.ctx = j.ctx;
            trace(std::move(e));
          }
        }
      }
    } else {
      arrivals_->inc();
      FleetJob& aj = jobs_[ai];
      if (fabric_ != nullptr) {
        // The request descriptor reaches the control plane from outside
        // the fleet; charged for cost/metering (the open-loop arrival
        // instant itself is the generator's, not the fabric's).
        (void)fabric_->transfer(ep_external(), ep_control(), kArrivalMsgBytes,
                                net::MemType::kHost, t, &aj.ctx);
      }
      {
        obs::FleetTraceEvent e;
        e.time = t;
        e.kind = obs::FleetTraceKind::kArrival;
        e.job = aj.req.id;
        e.ctx = aj.ctx;
        e.label = templates_[aj.req.tmpl].name;
        trace(std::move(e));
      }
      ++ai;
    }
    // Keep the edge grid aligned while the watch is closed, so a watch
    // that re-opens later (an exhausted control send raising suspicion)
    // resumes at the next future edge, never one in the past.
    if (hb_on && th == kNever && next_hb <= t) {
      next_hb = (t / cfg_.heartbeat.interval + 1) * cfg_.heartbeat.interval;
    }
    try_place_pending(t);
  }

  // Drain: everything is submitted and every fault has fired. Keep stepping
  // (completions free capacity for still-pending jobs) until nothing moves.
  for (;;) {
    run_nodes_until(kNever);
    sim::Picos now = 0;
    for (const Node& n : nodes_) {
      if (n.sys != nullptr) now = std::max(now, n.sys->now());
    }
    expire_and_cancel_overdue(now);
    obs_tick(now);
    const std::uint64_t placements_before = placements_->value();
    try_place_pending(now);
    bool runnable = placements_->value() != placements_before;
    for (const Node& n : nodes_) {
      if ((n.state == NodeState::kAlive || n.state == NodeState::kDegraded) &&
          !n.live.empty()) {
        runnable = true;
      }
    }
    if (!runnable) {
      // Whatever is still pending can never run (no capacity will free up).
      for (FleetJob& j : jobs_) {
        if (j.state == FleetJobState::kPending) {
          fail_job(j,
                   j.replayed_after_loss ? Status::kErrorNodeLost
                                         : Status::kErrorDeadlineExceeded,
                   now);
        }
      }
      break;
    }
  }
  obs_tick(fleet_now());
  return Status::kSuccess;
}

// --- results -----------------------------------------------------------------

std::vector<NodeStatus> Controller::node_status() {
  std::vector<NodeStatus> out;
  out.reserve(nodes_.size());
  for (Node& n : nodes_) {
    NodeStatus s;
    s.id = n.id;
    s.state = n.state;
    s.placed_bytes = n.placed_bytes;
    s.live_jobs = static_cast<std::uint32_t>(n.live.size());
    s.slow_factor = n.slow_factor;
    s.suspected = n.suspected;
    if (n.sys != nullptr) {
      s.local_now = n.sys->now();
      s.events_digest = n.sys->events().digest(s.local_now);
    }
    out.push_back(s);
  }
  return out;
}

SloSummary Controller::slo_summary(std::uint32_t priority) {
  ensure_classes(priority + 1);
  SloSummary s;
  s.priority = priority;
  for (const FleetJob& j : jobs_) {
    if (j.req.priority != priority) continue;
    ++s.submitted;
    if (j.state == FleetJobState::kFinished) ++s.finished;
    if (j.state == FleetJobState::kFailed) ++s.failed;
    if (j.slo_violation) ++s.violations;
  }
  const obs::Histogram& h = *latency_by_class_[priority];
  s.p50 = static_cast<sim::Picos>(h.quantile_upper_bound(50)) * 1'000'000;
  s.p95 = static_cast<sim::Picos>(h.quantile_upper_bound(95)) * 1'000'000;
  s.p99 = static_cast<sim::Picos>(h.quantile_upper_bound(99)) * 1'000'000;
  return s;
}

std::uint64_t Controller::digest() {
  std::uint64_t h = kFnvOffset;
  for (Node& n : nodes_) {
    mix(h, static_cast<std::uint64_t>(n.state));
    mix(h, (n.suspected ? 1u : 0u) | (n.silently_dead ? 2u : 0u));
    if (n.sys != nullptr) {
      const sim::Picos now = n.sys->now();
      mix(h, static_cast<std::uint64_t>(now));
      mix(h, n.sys->events().digest(now));
    }
  }
  for (const FleetJob& j : jobs_) {
    mix(h, j.req.id);
    mix(h, static_cast<std::uint64_t>(j.state));
    mix(h, static_cast<std::uint64_t>(j.status));
    mix(h, static_cast<std::uint64_t>(j.finished_at));
    mix(h, static_cast<std::uint64_t>(j.latency));
    mix(h, j.checksum);
    mix(h, j.placements);
    mix(h, j.loss_attempts);
    mix(h, (j.slo_violation ? 1u : 0u) | (j.migrated ? 2u : 0u) |
               (j.replayed_after_loss ? 4u : 0u));
    mix(h, (std::uint64_t{j.ctx.origin_node} << 32) | j.ctx.root_span);
    mix(h, j.completion_node);
  }
  if (fabric_ != nullptr) mix(h, fabric_->digest());
  // The observability layer is part of the reproducibility contract: the
  // recorder's sampled history and the alert open/close sequence must be
  // bit-identical across identical runs, so they mix in too.
  if (ts_ != nullptr) mix(h, ts_->digest());
  if (alert_engine_ != nullptr) mix(h, alert_engine_->digest());
  mix_bytes(h, reg_.to_json());
  return h;
}

}  // namespace ghum::fleet
