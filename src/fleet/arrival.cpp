#include "fleet/arrival.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.hpp"

namespace ghum::fleet {

std::vector<JobRequest> generate_arrivals(
    const ArrivalConfig& cfg, const std::vector<JobTemplate>& templates) {
  if (templates.empty()) {
    throw std::invalid_argument{"fleet::generate_arrivals: no job templates"};
  }
  const std::uint32_t classes =
      cfg.priority_classes == 0 ? 1 : cfg.priority_classes;

  // Weighted class draw over a fixed total; uniform when unspecified.
  std::vector<std::uint64_t> weights(classes, 1);
  for (std::size_t c = 0; c < weights.size() && c < cfg.class_weights.size();
       ++c) {
    weights[c] = cfg.class_weights[c];
  }
  std::uint64_t total_weight = 0;
  for (const std::uint64_t w : weights) total_weight += w;
  if (total_weight == 0) {
    throw std::invalid_argument{"fleet::generate_arrivals: zero class weights"};
  }

  sim::Rng rng{cfg.seed};
  std::vector<JobRequest> out;
  out.reserve(cfg.count);
  sim::Picos t = 0;
  for (std::uint64_t i = 0; i < cfg.count; ++i) {
    t += static_cast<sim::Picos>(rng.next_interarrival(
        static_cast<std::uint64_t>(cfg.mean_interarrival)));

    JobRequest r;
    r.id = i;
    r.arrival = t;
    r.tmpl = static_cast<std::uint32_t>(rng.next_below(templates.size()));

    std::uint64_t pick = rng.next_below(total_weight);
    std::uint32_t cls = 0;
    while (pick >= weights[cls]) {
      pick -= weights[cls];
      ++cls;
    }
    r.priority = cls;

    const double factor =
        cfg.deadline_factor.empty()
            ? 16.0
            : cfg.deadline_factor[cls < cfg.deadline_factor.size()
                                      ? cls
                                      : cfg.deadline_factor.size() - 1];
    const sim::Picos est = templates[r.tmpl].est_cost;
    r.deadline =
        t + std::max(cfg.deadline_floor,
                     static_cast<sim::Picos>(static_cast<double>(est) * factor));
    r.replicas = (cls == 0 && cfg.top_replicas > 1) ? cfg.top_replicas : 1;
    out.push_back(r);
  }
  return out;
}

}  // namespace ghum::fleet
