#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/fleet_config.hpp"
#include "net/fabric.hpp"
#include "obs/alerts.hpp"
#include "obs/fleet_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

/// \file controller.hpp
/// fleet::Controller — N simulated Grace Hopper superchips (each a
/// core::System + tenant::Scheduler) under one deterministic control
/// plane (DESIGN.md Section 11). The controller owns:
///
///  - placement: bin-pack by footprint or load-balance by predicted local
///    completion, with anti-affinity (replicas of one request never share
///    a node) and per-node footprint budgets;
///  - the fleet fault domain: deterministic whole-node loss (in-flight
///    state dies; victims are replayed on survivors under a bounded
///    backoff retry budget or failed with Status::kErrorNodeLost) and
///    node degradation (slow node; drained by live migration — the whole
///    machine snapshotted via chk::Snapshotter, charged at the inter-node
///    transfer cost, restored onto a spare where every resident job
///    continues mid-flight);
///  - admission control: when capacity drops below demand, the
///    lowest-priority pending load is shed gracefully, and pending or
///    running jobs that blew their deadline fail with
///    Status::kErrorDeadlineExceeded instead of stalling the fleet —
///    protected classes are exempt from both;
///  - SLO accounting: per-class job-latency histograms in a fleet-level
///    obs::MetricsRegistry; percentiles read straight from the histogram
///    buckets (obs::Histogram::quantile_upper_bound).
///
///  - failure detection (HeartbeatConfig, DESIGN.md Section 14): with
///    heartbeats enabled the controller stops being omniscient — a
///    scheduled node loss becomes a *silent* death (the machine and its
///    fabric endpoint die; the controller's belief does not change), and
///    only missed heartbeat edges move the node to suspected (excluded
///    from placement) and, after the miss threshold, to declared-dead,
///    which is what triggers the recovery ladder. A suspected-but-alive
///    node rejoins on its next on-time response without any replay.
///
/// Time model: each node's simulated clock is that node's fleet time.
/// A node idle at placement time is advanced to the placement instant
/// (idle time is real time); a degraded node's work is dilated by its
/// slow factor. Fleet events (arrivals, faults, re-placement retries) are
/// processed in deterministic (time, kind, id) order, nodes always in
/// index order — two identical runs are bit-for-bit identical, which
/// digest() fingerprints and bench_fleet gates.
namespace ghum::fleet {

enum class NodeState : std::uint8_t {
  kAlive,     ///< serving
  kDegraded,  ///< slow; accepts no new placements
  kDead,      ///< lost; machine state gone
  kRetired,   ///< evacuated onto a spare; machine state migrated away
  kSpare,     ///< powered off, waiting to replace a degraded node
};

[[nodiscard]] constexpr std::string_view to_string(NodeState s) noexcept {
  switch (s) {
    case NodeState::kAlive: return "alive";
    case NodeState::kDegraded: return "degraded";
    case NodeState::kDead: return "dead";
    case NodeState::kRetired: return "retired";
    case NodeState::kSpare: return "spare";
  }
  return "?";
}

enum class FleetJobState : std::uint8_t {
  kPending,   ///< waiting for capacity (or for its re-placement backoff)
  kPlaced,    ///< at least one live replica on a node
  kFinished,  ///< a replica completed; latency and checksum are valid
  kFailed,    ///< shed, deadline-exceeded, node-lost, or app failure
};

[[nodiscard]] constexpr std::string_view to_string(FleetJobState s) noexcept {
  switch (s) {
    case FleetJobState::kPending: return "pending";
    case FleetJobState::kPlaced: return "placed";
    case FleetJobState::kFinished: return "finished";
    case FleetJobState::kFailed: return "failed";
  }
  return "?";
}

/// Controller-side lifecycle record of one request.
struct FleetJob {
  JobRequest req;
  std::uint64_t footprint = 0;  ///< template's declared footprint, bytes
  FleetJobState state = FleetJobState::kPending;
  Status status = Status::kSuccess;  ///< failure cause when kFailed

  struct Replica {
    NodeId node = kNoNode;
    tenant::TenantId tenant = tenant::kNoTenant;
  };
  std::vector<Replica> replicas;  ///< live placements

  std::uint32_t placements = 0;     ///< replica placements performed
  std::uint32_t loss_attempts = 0;  ///< re-placement retries consumed
  sim::Picos not_before = 0;        ///< re-placement backoff gate
  sim::Picos first_placed_at = -1;  ///< fleet time of first placement (-1 = never)
  sim::Picos finished_at = 0;       ///< completion (or failure) fleet time
  sim::Picos latency = 0;           ///< finished_at - arrival (finished only)
  std::uint64_t checksum = 0;       ///< finishing replica's output digest
  bool slo_violation = false;       ///< finished late, or failed/shed
  bool migrated = false;            ///< continued mid-flight after evacuation
  bool replayed_after_loss = false; ///< re-placed after losing its node

  /// Causal identity (FleetObsConfig::enabled only). Opened externally at
  /// arrival; a node fault that re-drives the job (loss replay, live
  /// migration) re-roots it at the faulted node, so a job that finishes
  /// elsewhere demonstrably carried one span across a node boundary.
  obs::TraceContext ctx;
  NodeId completion_node = kNoNode;  ///< node whose replica finished

  [[nodiscard]] bool terminal() const noexcept {
    return state == FleetJobState::kFinished || state == FleetJobState::kFailed;
  }
};

/// External view of one node.
struct NodeStatus {
  NodeId id = kNoNode;
  NodeState state = NodeState::kSpare;
  sim::Picos local_now = 0;
  std::uint64_t placed_bytes = 0;
  std::uint32_t live_jobs = 0;
  std::uint32_t slow_factor = 1;
  std::uint64_t events_digest = 0;  ///< EventLog digest (0 when machine gone)
  /// Failure-detector overlay: the controller currently suspects this node
  /// (missed heartbeat or an exhausted control send) and will not place on
  /// it, but has not yet declared it dead.
  bool suspected = false;
};

/// Per-class SLO summary read from the fleet histograms.
struct SloSummary {
  std::uint32_t priority = 0;
  std::uint64_t submitted = 0;
  std::uint64_t finished = 0;
  std::uint64_t failed = 0;
  std::uint64_t violations = 0;  ///< late finishes + failures/sheds
  sim::Picos p50 = 0;            ///< latency percentile upper bounds
  sim::Picos p95 = 0;
  sim::Picos p99 = 0;
};

class Controller {
 public:
  /// Builds the fleet: cfg.nodes live superchips (each its own System +
  /// Scheduler) plus cfg.spares powered-off slots. Throws
  /// StatusError{kErrorInvalidValue} on a malformed config (no templates,
  /// zero nodes, fault events naming nodes outside the fleet).
  Controller(FleetConfig cfg, std::vector<JobTemplate> templates);

  /// Serves the whole request stream through the configured fault
  /// schedule and drains the fleet. One-shot: a second call fails with
  /// kErrorInvalidValue. Returns kSuccess when every request reached a
  /// terminal state (individual job failures are recorded per job, not
  /// here); any Status return is also recorded for last_error().
  Status run(const std::vector<JobRequest>& requests);

  // --- results ---------------------------------------------------------------
  [[nodiscard]] const std::vector<FleetJob>& jobs() const noexcept {
    return jobs_;
  }
  [[nodiscard]] const std::vector<JobTemplate>& templates() const noexcept {
    return templates_;
  }
  [[nodiscard]] std::vector<NodeStatus> node_status();
  [[nodiscard]] SloSummary slo_summary(std::uint32_t priority);

  /// Fleet-level instruments: ghum_fleet_* counters (placements,
  /// migrations, node losses, shed jobs, SLO violations by class) and the
  /// per-class job-latency/queue-wait histograms.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return reg_; }

  /// Federated view: every fleet instrument under node="fleet" plus every
  /// live node's machine registry under node="<id>" (gauges synced
  /// first). Built fresh per call; counters and gauges add, histograms
  /// merge, so a label-blind sum over it equals the per-node sum
  /// (bench_fleetscope's federation gate).
  [[nodiscard]] obs::MetricsRegistry federated_metrics();
  /// Prometheus / JSON expositions of federated_metrics().
  [[nodiscard]] std::string metrics_prometheus();
  [[nodiscard]] std::string metrics_json();

  /// One node's machine registry (gauges synced first), or null when the
  /// node no longer holds a machine (dead, retired, spare). This is the
  /// ground truth the federation equality gate sums against.
  [[nodiscard]] const obs::MetricsRegistry* node_metrics(NodeId id);

  /// The flight recorder / alert engine / causal trace stream — null or
  /// empty unless FleetObsConfig::enabled. Populated during run().
  [[nodiscard]] const obs::TimeSeries* recorder() const noexcept {
    return ts_.get();
  }
  [[nodiscard]] const obs::AlertEngine* alert_engine() const noexcept {
    return alert_engine_.get();
  }
  [[nodiscard]] const std::vector<obs::FleetTraceEvent>& trace_events()
      const noexcept {
    return trace_;
  }
  /// Fleet-level Chrome trace: per-node process lanes, per-tenant
  /// threads, traced fabric transfers, link-flap duration events, and
  /// s/t/f flow arrows crossing node lanes. Validated by obs::json_valid.
  [[nodiscard]] std::string chrome_trace() const;

  /// FNV-1a fingerprint of the complete fleet outcome: every node's state,
  /// local end time and EventLog digest, every job's terminal record, and
  /// the metrics exposition. Two identical runs => identical digests
  /// (bench_fleet's gate (a)).
  [[nodiscard]] std::uint64_t digest();

  /// Sticky last error of the public API (get_last_error semantics — reads
  /// clear it). Every fleet-facing entry point that fails records here.
  [[nodiscard]] Status get_last_error() noexcept {
    Status s = last_error_;
    last_error_ = Status::kSuccess;
    return s;
  }
  [[nodiscard]] Status peek_last_error() const noexcept { return last_error_; }

  [[nodiscard]] const FleetConfig& config() const noexcept { return cfg_; }

  /// The inter-node fabric (null under cfg.legacy_transfer_cost). Its
  /// ghum_net_* instruments live in metrics(); its endpoint space is
  /// nodes + spares + 2, the last two being the external arrival source
  /// and the control plane.
  [[nodiscard]] net::Fabric* fabric() noexcept { return fabric_.get(); }

  /// Endpoint id of the external request source on the fabric.
  [[nodiscard]] std::uint32_t ep_external() const noexcept {
    return cfg_.nodes + cfg_.spares;
  }
  /// Endpoint id of the fleet control plane on the fabric.
  [[nodiscard]] std::uint32_t ep_control() const noexcept {
    return cfg_.nodes + cfg_.spares + 1;
  }

 private:
  struct Node {
    NodeId id = kNoNode;
    NodeState state = NodeState::kSpare;
    std::unique_ptr<core::System> sys;
    std::unique_ptr<tenant::Scheduler> sched;
    std::uint32_t slow_factor = 1;
    std::uint64_t placed_bytes = 0;
    /// Live (tenant id on this node's scheduler -> fleet job index).
    std::vector<std::pair<tenant::TenantId, std::uint64_t>> live;
    /// Failure-detector belief: excluded from placement, still running.
    bool suspected = false;
    /// Physically dead (machine and endpoint gone) but not yet detected —
    /// state/live/placed_bytes above keep the controller's stale belief.
    bool silently_dead = false;
    /// Consecutive heartbeat edges missed.
    std::uint32_t hb_misses = 0;
    /// Last clock the controller observed before the machine vanished
    /// (placement ETA and overdue checks can't read a dead node's clock).
    sim::Picos known_now = 0;
  };

  struct Retry {
    sim::Picos due = 0;
    std::uint64_t job = 0;
  };

  Status record(Status s) noexcept {
    if (s != Status::kSuccess) last_error_ = s;
    return s;
  }

  void activate(Node& n);  ///< boot a fresh System + Scheduler for a node
  [[nodiscard]] sim::Picos fleet_now() const noexcept;  ///< max node clock
  [[nodiscard]] std::uint64_t node_budget() const noexcept;
  [[nodiscard]] sim::Picos transfer_cost(std::uint64_t bytes) const noexcept;

  // Event loop.
  void run_nodes_until(sim::Picos t);
  bool step_node(Node& n);  ///< one quantum + slow-factor dilation; false = idle
  bool harvest(Node& n);    ///< collect newly terminal jobs; true if any
  void expire_and_cancel_overdue(sim::Picos now);
  void try_place_pending(sim::Picos now);

  // Placement.
  [[nodiscard]] NodeId pick_node(std::uint64_t footprint,
                                 const std::vector<NodeId>& exclude) const;
  bool place(FleetJob& j, sim::Picos now);
  void finish_job(FleetJob& j, const tenant::Job& tj);
  void fail_job(FleetJob& j, Status why, sim::Picos now);
  void cancel_replicas(FleetJob& j, Status reason);
  void ensure_classes(std::uint32_t classes);

  // Fault domain.
  void on_node_loss(const fault::NodeLossEvent& e);
  /// Heartbeat mode: the machine and endpoint die now; belief is untouched.
  void on_silent_death(const fault::NodeLossEvent& e);
  /// The recovery ladder (omniscient loss, or heartbeat detection): kill
  /// whatever machine remains, replay victims under the backoff budget,
  /// shed to the surviving capacity.
  void declare_loss(Node& n, sim::Picos time);
  void on_node_degrade(const fault::NodeDegradeEvent& e);
  void evacuate(Node& n, const obs::TraceContext& ctx);
  void shed_to_capacity(sim::Picos now);

  // Failure detection (HeartbeatConfig::enabled only).
  void heartbeat_tick(sim::Picos t);
  /// Whether probes still need to fire: scheduled losses remain, a silent
  /// death is undetected, or a suspicion is open. Once false the probe
  /// stream ends, bounding the drain (a deliberate model simplification —
  /// a real detector never stops probing).
  [[nodiscard]] bool heartbeat_watch(bool losses_left) const noexcept;
  void mark_suspected(Node& n, sim::Picos t, std::string_view why);

  // Observability (FleetObsConfig::enabled only).
  [[nodiscard]] bool obs_on() const noexcept { return cfg_.obs.enabled; }
  void setup_obs();            ///< recorder series + alert engine, at run()
  void obs_tick(sim::Picos t); ///< sample edges <= t, evaluate alerts
  void trace(obs::FleetTraceEvent e);

  FleetConfig cfg_;
  std::vector<JobTemplate> templates_;
  std::unique_ptr<net::Fabric> fabric_;  ///< null in legacy-cost mode
  std::vector<Node> nodes_;  ///< actives then spares; index == NodeId
  std::vector<FleetJob> jobs_;
  std::vector<Retry> retries_;  ///< kept sorted by (due, job) ascending
  bool ran_ = false;
  Status last_error_ = Status::kSuccess;

  // Fleet instruments (registered at construction, zero until events).
  obs::MetricsRegistry reg_;
  obs::Counter* arrivals_;
  obs::Counter* placements_;
  obs::Counter* finished_;
  obs::Counter* shed_;
  obs::Counter* node_losses_;
  obs::Counter* node_degrades_;
  obs::Counter* evacuations_;
  obs::Counter* migrated_jobs_;
  obs::Counter* migrated_bytes_;
  obs::Counter* replace_retries_;
  std::vector<obs::Counter*> violations_by_class_;
  std::vector<obs::Counter*> failed_by_class_;
  std::vector<obs::Histogram*> latency_by_class_;   ///< microseconds
  std::vector<obs::Histogram*> wait_by_class_;      ///< microseconds
  obs::Counter* alerts_opened_;
  obs::Counter* alerts_closed_;
  obs::Counter* hb_probes_;
  obs::Counter* hb_misses_;
  obs::Counter* hb_suspects_;
  obs::Counter* hb_rejoins_;
  obs::Counter* detected_losses_;
  obs::Counter* evac_corruptions_;
  obs::Counter* evac_rerequests_;
  obs::Counter* evac_replays_;

  // Fleet observability state (null/empty unless cfg_.obs.enabled).
  std::unique_ptr<obs::TimeSeries> ts_;
  std::unique_ptr<obs::AlertEngine> alert_engine_;
  std::vector<obs::FleetTraceEvent> trace_;
  std::size_t alert_seen_ = 0;   ///< alert events already folded into trace_
  std::uint32_t next_span_ = 1;  ///< deterministic root-span allocator
};

}  // namespace ghum::fleet
