#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

/// \file kernel_traffic.hpp
/// Per-kernel memory traffic accounting — the simulator's equivalent of the
/// Memory Workload Analysis section in Nvidia Nsight Compute, which the
/// paper uses to quantify traffic over NVLink-C2C, system memory, and GPU
/// global memory per kernel launch (Section 3.2; Figures 10 and 12).
///
/// The L1<->L2 volume aggregates every byte the SMs pulled through the GPU
/// cache hierarchy regardless of where it came from; dividing it by kernel
/// duration gives the "data rate being fed to the GPU for computation" the
/// paper reads off Figure 12.

namespace ghum::cache {

struct KernelTraffic {
  // GPU-origin traffic, split by where the data lived.
  std::uint64_t hbm_read_bytes = 0;    ///< from local GPU memory
  std::uint64_t hbm_write_bytes = 0;
  std::uint64_t c2c_read_bytes = 0;    ///< remote reads over NVLink-C2C
  std::uint64_t c2c_write_bytes = 0;   ///< remote writes over NVLink-C2C
  // CPU-origin traffic while this kernel/phase was active (host threads).
  std::uint64_t ddr_read_bytes = 0;
  std::uint64_t ddr_write_bytes = 0;
  std::uint64_t cpu_remote_read_bytes = 0;   ///< CPU reads of GPU memory
  std::uint64_t cpu_remote_write_bytes = 0;  ///< CPU writes to GPU memory

  std::uint64_t l1l2_bytes = 0;   ///< all GPU-origin bytes through L1/L2
  std::uint64_t gpu_accesses = 0; ///< individual load/store operations
  std::uint64_t migration_h2d_bytes = 0;  ///< driver migrations during kernel
  std::uint64_t migration_d2h_bytes = 0;

  std::uint64_t gpu_first_touch_faults = 0;
  std::uint64_t managed_faults = 0;

  [[nodiscard]] std::uint64_t gpu_local_bytes() const noexcept {
    return hbm_read_bytes + hbm_write_bytes;
  }
  [[nodiscard]] std::uint64_t gpu_remote_bytes() const noexcept {
    return c2c_read_bytes + c2c_write_bytes;
  }

  KernelTraffic& operator+=(const KernelTraffic& o);
};

/// One record per kernel launch (or named host phase).
struct KernelRecord {
  std::string name;
  std::uint64_t kernel_id = 0;
  std::uint32_t tenant = 0;  ///< tenant active during this launch (0 = none)
  sim::Picos start = 0;
  sim::Picos duration = 0;
  KernelTraffic traffic;

  /// Achieved L1<->L2 throughput in bytes/second.
  [[nodiscard]] double l1l2_throughput_Bps() const {
    const double s = sim::to_seconds(duration);
    return s > 0 ? static_cast<double>(traffic.l1l2_bytes) / s : 0.0;
  }
};

}  // namespace ghum::cache
