#include "cache/kernel_traffic.hpp"

namespace ghum::cache {

KernelTraffic& KernelTraffic::operator+=(const KernelTraffic& o) {
  hbm_read_bytes += o.hbm_read_bytes;
  hbm_write_bytes += o.hbm_write_bytes;
  c2c_read_bytes += o.c2c_read_bytes;
  c2c_write_bytes += o.c2c_write_bytes;
  ddr_read_bytes += o.ddr_read_bytes;
  ddr_write_bytes += o.ddr_write_bytes;
  cpu_remote_read_bytes += o.cpu_remote_read_bytes;
  cpu_remote_write_bytes += o.cpu_remote_write_bytes;
  l1l2_bytes += o.l1l2_bytes;
  gpu_accesses += o.gpu_accesses;
  migration_h2d_bytes += o.migration_h2d_bytes;
  migration_d2h_bytes += o.migration_d2h_bytes;
  gpu_first_touch_faults += o.gpu_first_touch_faults;
  managed_faults += o.managed_faults;
  return *this;
}

}  // namespace ghum::cache
