#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

/// \file nvlink_c2c.hpp
/// Model of the NVLink-C2C (chip-to-chip) cache-coherent interconnect
/// (paper Section 2.1.1). Properties reproduced:
///   - direct remote access at cacheline granularity: 64 B transfers on the
///     CPU side, 128 B on the GPU side;
///   - asymmetric sustained bandwidth measured with Comm|Scope: 375 GB/s
///     host-to-device, 297 GB/s device-to-host (450 GB/s theoretical);
///   - hardware atomics across the link;
///   - full coherence (no software invalidation needed) per Arm AMBA CHI.
/// Traffic counters feed the per-kernel Memory Workload Analysis
/// (profile/workload_analysis.hpp), used by paper Figures 10 and 12.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::interconnect {

/// Direction of *data flow* over the link.
enum class Direction : std::uint8_t {
  kCpuToGpu = 0,  ///< H2D: GPU reads of CPU-resident data, CPU->GPU migration
  kGpuToCpu = 1,  ///< D2H: GPU writes to CPU-resident data, CPU reads of GPU data
};

[[nodiscard]] constexpr std::string_view to_string(Direction d) noexcept {
  return d == Direction::kCpuToGpu ? "h2d" : "d2h";
}

struct C2CSpec {
  double bandwidth_h2d_Bps = 375e9;  ///< Comm|Scope-measured H2D
  double bandwidth_d2h_Bps = 297e9;  ///< Comm|Scope-measured D2H
  sim::Picos latency = sim::nanoseconds(650);  ///< one-way request latency
  std::uint32_t cacheline_cpu = 64;   ///< CPU-side access granularity, bytes
  std::uint32_t cacheline_gpu = 128;  ///< GPU-side access granularity, bytes
};

class NvlinkC2C {
 public:
  explicit NvlinkC2C(C2CSpec spec = {}) : spec_(spec) {}

  [[nodiscard]] const C2CSpec& spec() const noexcept { return spec_; }

  /// Streaming cost of moving \p bytes in \p dir; counts traffic.
  [[nodiscard]] sim::Picos transfer(Direction dir, std::uint64_t bytes);

  /// Cost of one remote atomic (paper: atomics are native on the link).
  [[nodiscard]] sim::Picos atomic_op();

  [[nodiscard]] sim::Picos latency() const noexcept {
    return degraded() ? static_cast<sim::Picos>(
                            static_cast<double>(spec_.latency) * lat_factor_)
                      : spec_.latency;
  }

  /// Degraded service (fault injection: link CRC replays / lane loss):
  /// bandwidth divided by \p bw_factor, latency multiplied by
  /// \p lat_factor until clear_degrade(). Factors must be >= 1.
  void set_degrade(double bw_factor, double lat_factor) noexcept {
    bw_factor_ = bw_factor;
    lat_factor_ = lat_factor;
  }
  void clear_degrade() noexcept { bw_factor_ = lat_factor_ = 1.0; }
  [[nodiscard]] bool degraded() const noexcept {
    return bw_factor_ != 1.0 || lat_factor_ != 1.0;
  }

  /// Cumulative data volume moved, by direction.
  [[nodiscard]] std::uint64_t bytes_moved(Direction dir) const noexcept {
    return bytes_[static_cast<int>(dir)];
  }
  [[nodiscard]] std::uint64_t atomics_issued() const noexcept { return atomics_; }

 private:
  C2CSpec spec_;
  double bw_factor_ = 1.0;
  double lat_factor_ = 1.0;
  std::uint64_t bytes_[2]{};
  std::uint64_t atomics_ = 0;

  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::interconnect
