#include "interconnect/nvlink_c2c.hpp"

namespace ghum::interconnect {

sim::Picos NvlinkC2C::transfer(Direction dir, std::uint64_t bytes) {
  bytes_[static_cast<int>(dir)] += bytes;
  const double bw = (dir == Direction::kCpuToGpu ? spec_.bandwidth_h2d_Bps
                                                 : spec_.bandwidth_d2h_Bps) /
                    bw_factor_;
  return sim::transfer_time(bytes, bw);
}

sim::Picos NvlinkC2C::atomic_op() {
  ++atomics_;
  // Round trip: request + response, plus one cacheline each way is already
  // dominated by latency for a single atomic.
  return 2 * spec_.latency;
}

}  // namespace ghum::interconnect
