#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

/// \file status.hpp
/// ghum::Status — the CUDA-style error-code surface of the simulator. The
/// paper's oversubscription experiments (Sections 6-7) are a robustness
/// story: explicit allocation hard-fails past 100% footprint while the
/// unified flavours degrade, so applications must be able to *observe*
/// failures the way cudaGetLastError() reports them instead of dying on an
/// uncaught exception. Layers that cannot degrade locally throw StatusError
/// (carrying a Status) so the runtime/bench layer can turn the outcome into
/// a reported row rather than a crashed run.

namespace ghum {

enum class Status : std::uint8_t {
  kSuccess = 0,
  /// cudaErrorMemoryAllocation: device (or pinned) memory exhausted at an
  /// eager allocation — the failure mode of cudaMalloc past 100% footprint.
  kErrorMemoryAllocation,
  /// Both physical memory nodes exhausted while servicing a fault — the
  /// simulated analogue of the OOM killer ending the process.
  kErrorOutOfMemory,
  /// Argument does not name a live allocation / malformed request.
  kErrorInvalidValue,
  /// free() of an allocation that was already freed (distinct from
  /// kErrorInvalidValue so double-free bugs are diagnosable).
  kErrorDoubleFree,
  /// Uncorrectable ECC error retired frames out from under the run.
  kErrorEccUncorrectable,
  /// GPU channel reset: the device context died, in-flight work was aborted
  /// and device-resident managed pages of the victim were poisoned. The job
  /// can be restarted from a checkpoint (cudaErrorECCUncorrectable's big
  /// sibling in the escalation ladder).
  kErrorGpuReset,
  /// Escalation past every bounded-retry and restart budget (e.g. an ECC
  /// storm that blew through the frame-retirement budget): the job cannot
  /// be recovered, only failed gracefully with attribution intact.
  kErrorUnrecoverable,
  /// Progress watchdog fired: the job made no simulated-time progress (or
  /// sat in a retry storm) for longer than the configured budget.
  kErrorTimeout,
  /// The superchip a job was placed on left the fleet (whole-node loss).
  /// In-flight state died with the node; the fleet controller either
  /// replays the job elsewhere or fails it with this code once the
  /// re-placement retry budget is spent.
  kErrorNodeLost,
  /// The job cannot meet (or has already missed) its SLO deadline: it
  /// finished late, sat queued past its deadline, or was shed by admission
  /// control when fleet capacity dropped below demand.
  kErrorDeadlineExceeded,
  /// Malformed inter-node network specification: a net::NetSpec with a
  /// zero/negative/non-finite bandwidth, a negative latency or overhead,
  /// an unordered/partial protocol-threshold ladder, a malformed link-flap
  /// schedule (negative start, end preceding start), or a
  /// MessageFaultConfig with out-of-range probabilities. Raised at
  /// net::Fabric construction, before any message can be charged.
  kErrorNetConfig,
  /// A reliable fabric send spent its whole bounded retransmission budget
  /// (drops, lost acks, or link-level corruption on every attempt) without
  /// a verified delivery. The message is undeliverable as far as the
  /// control plane can tell — the canonical symptom of sending to a
  /// silently dead endpoint.
  kErrorRetransmitExhausted,
  /// End-to-end data corruption detected by receiver-side digest
  /// verification — payload bytes that slipped past the link checksum
  /// (bounce-buffer / DMA corruption) and failed the application-level
  /// integrity check, e.g. an evacuation blob whose re-request was also
  /// corrupt.
  kErrorDataCorruption,
};

[[nodiscard]] std::string_view to_string(Status s) noexcept;

/// Exception carrying a Status across layers that have no error-return
/// channel (the page-granular access path). The runtime and the benches
/// catch it and report the Status; nothing above main() should see it.
class StatusError : public std::runtime_error {
 public:
  StatusError(Status s, const std::string& what)
      : std::runtime_error(what + " (" + std::string{to_string(s)} + ")"),
        status_(s) {}

  [[nodiscard]] Status status() const noexcept { return status_; }

 private:
  Status status_;
};

}  // namespace ghum
