#include "fault/status.hpp"

namespace ghum {

std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::kSuccess: return "success";
    case Status::kErrorMemoryAllocation: return "out of memory";
    case Status::kErrorOutOfMemory: return "system out of memory";
    case Status::kErrorInvalidValue: return "invalid value";
    case Status::kErrorDoubleFree: return "double free";
    case Status::kErrorEccUncorrectable: return "uncorrectable ECC error";
    case Status::kErrorGpuReset: return "GPU channel reset";
    case Status::kErrorUnrecoverable: return "unrecoverable";
    case Status::kErrorTimeout: return "watchdog timeout";
    case Status::kErrorNodeLost: return "node lost";
    case Status::kErrorDeadlineExceeded: return "deadline exceeded";
    case Status::kErrorNetConfig: return "malformed network spec";
    case Status::kErrorRetransmitExhausted: return "retransmit budget exhausted";
    case Status::kErrorDataCorruption: return "data corruption detected";
  }
  return "unknown";
}

}  // namespace ghum
