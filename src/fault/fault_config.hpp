#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

/// \file fault_config.hpp
/// Configuration of the deterministic fault-injection layer. Lives apart
/// from fault_injector.hpp so core::SystemConfig can embed it without
/// pulling in the machine model. Two injection mechanisms:
///  - call-site probabilities, drawn from a dedicated sim::Rng in the
///    (deterministic) order the call sites execute, and
///  - schedules keyed to simulated time (link-degradation windows, ECC
///    events), applied when the simulated clock passes them.
/// Same seed + same config + same workload => bit-identical injected
/// schedule, simulated end time and event log (asserted by test_fault.cpp).

namespace ghum::fault {

/// An interval of degraded NVLink-C2C service (link CRC replays / lane
/// degradation): bandwidth is divided and latency multiplied while the
/// simulated clock is inside [start, start+duration). Windows must not
/// overlap; they are applied in start order.
struct LinkDegradeWindow {
  sim::Picos start = 0;
  sim::Picos duration = 0;
  double bandwidth_factor = 2.0;  ///< divide link bandwidth by this (>= 1)
  double latency_factor = 2.0;    ///< multiply link latency by this (>= 1)
};

/// An uncorrectable ECC error at a simulated-time point: \p bytes of HBM
/// frames are permanently retired. Resident managed blocks are remapped
/// (evicted to CPU) to vacate frames rather than aborting the run.
struct EccEvent {
  sim::Picos time = 0;
  std::uint64_t bytes = 2ull << 20;
};

/// A GPU channel reset at a simulated-time point: the crash fault class.
/// The device context executing at that moment dies — in-flight migration
/// batches are aborted, GMMU TLB state is invalidated, and the victim
/// tenant's device-resident managed pages (plus its device-only
/// allocations) are poisoned. Surfaces as Status::kErrorGpuReset; the
/// recovery ladder (tenant::RecoveryManager) decides restart vs failure.
struct GpuResetEvent {
  sim::Picos time = 0;
};

struct FaultConfig {
  bool enabled = false;

  /// Seed of the injector's private Rng (independent of workload seeds).
  std::uint64_t seed = 0x6007'F417ull;

  /// Probability that any one physical-frame allocation transiently fails
  /// (the momentary exhaustion callers already know how to survive:
  /// first-touch falls back to the other node, managed faults fall back to
  /// remote mapping). Resilience responses themselves (eviction writeback,
  /// the fallback placement) are exempt from injection.
  double frame_alloc_denial_prob = 0.0;

  /// Probability that a migration batch (managed block move, eviction
  /// writeback, system-page range migration) fails and must be retried.
  double migration_batch_fail_prob = 0.0;
  /// Bounded retry policy: up to this many retries per batch, each charged
  /// \p migration_retry_backoff of simulated time, doubling per attempt.
  /// A batch that exhausts its retries is abandoned and the caller
  /// degrades (remote mapping / skipped victim / unmigrated range).
  std::uint32_t migration_max_retries = 3;
  sim::Picos migration_retry_backoff = sim::microseconds(20);

  std::vector<LinkDegradeWindow> link_degrade;
  std::vector<EccEvent> ecc_events;
  std::vector<GpuResetEvent> gpu_resets;

  /// ECC-storm escalation: once more than this many bytes of HBM frames
  /// have been retired, further ECC events are beyond what frame
  /// retirement can absorb and the run escalates to
  /// Status::kErrorUnrecoverable (no restart can cure a dying device).
  /// 0 = unlimited retirement budget (the pre-existing behaviour).
  std::uint64_t ecc_retirement_budget = 0;
};

}  // namespace ghum::fault
