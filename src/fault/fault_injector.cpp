#include "fault/fault_injector.hpp"

#include <algorithm>

namespace ghum::fault {

FaultInjector::FaultInjector(core::Machine& m)
    : m_(&m), cfg_(m.config().faults), rng_(cfg_.seed) {
  windows_ = cfg_.link_degrade;
  std::sort(windows_.begin(), windows_.end(),
            [](const LinkDegradeWindow& a, const LinkDegradeWindow& b) {
              return a.start < b.start;
            });
  ecc_ = cfg_.ecc_events;
  std::sort(ecc_.begin(), ecc_.end(),
            [](const EccEvent& a, const EccEvent& b) { return a.time < b.time; });
  resets_ = cfg_.gpu_resets;
  std::sort(resets_.begin(), resets_.end(),
            [](const GpuResetEvent& a, const GpuResetEvent& b) {
              return a.time < b.time;
            });
}

bool FaultInjector::deny_frame_alloc(mem::Node node) {
  if (!cfg_.enabled || suppressed() || cfg_.frame_alloc_denial_prob <= 0.0) {
    return false;
  }
  if (rng_.next_double() >= cfg_.frame_alloc_denial_prob) return false;
  ++denials_;
  m_->stats().add("fault.alloc_denials");
  m_->metrics().alloc_denials->inc();
  if (m_->events().enabled()) {
    m_->events().record(sim::Event{.time = m_->clock().now(),
                                   .type = sim::EventType::kFaultAllocDenial,
                                   .va = 0,
                                   .bytes = 0,
                                   .aux = static_cast<std::uint32_t>(node)});
  }
  return true;
}

bool FaultInjector::fail_migration_batch() {
  if (!cfg_.enabled || suppressed() || cfg_.migration_batch_fail_prob <= 0.0) {
    return false;
  }
  return rng_.next_double() < cfg_.migration_batch_fail_prob;
}

void FaultInjector::on_time_advance(sim::Picos now) {
  if (windows_.empty()) return;
  auto& c2c = m_->c2c();
  if (active_window_ >= 0) {
    const LinkDegradeWindow& w = windows_[static_cast<std::size_t>(active_window_)];
    if (now < w.start + w.duration) return;  // still inside
    c2c.clear_degrade();
    active_window_ = -1;
    m_->metrics().link_degrade_ends->inc();
    if (m_->events().enabled()) {
      m_->events().record(sim::Event{.time = now,
                                     .type = sim::EventType::kLinkDegradeEnd,
                                     .va = 0,
                                     .bytes = 0,
                                     .aux = 0});
    }
  }
  // Skip windows the clock jumped clean over (they never took effect).
  while (next_window_ < windows_.size() &&
         now >= windows_[next_window_].start + windows_[next_window_].duration) {
    ++next_window_;
    m_->stats().add("fault.link_windows_skipped");
  }
  if (next_window_ < windows_.size() && now >= windows_[next_window_].start) {
    const LinkDegradeWindow& w = windows_[next_window_];
    c2c.set_degrade(std::max(1.0, w.bandwidth_factor),
                    std::max(1.0, w.latency_factor));
    active_window_ = static_cast<std::ptrdiff_t>(next_window_++);
    m_->stats().add("fault.link_degrade_windows");
    m_->metrics().link_degrade_begins->inc();
    if (m_->events().enabled()) {
      m_->events().record(sim::Event{.time = now,
                                     .type = sim::EventType::kLinkDegradeBegin,
                                     .va = 0,
                                     .bytes = 0,
                                     .aux = 0});
    }
  }
}

}  // namespace ghum::fault
