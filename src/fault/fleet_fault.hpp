#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

/// \file fleet_fault.hpp
/// Fleet-scale fault domains (DESIGN.md Section 11). Where FaultConfig
/// injects failures *inside* one simulated superchip (frame denials, link
/// degradation, ECC, channel resets), FleetFaultConfig injects failures of
/// *whole superchips* into a fleet::Controller: abrupt node loss and
/// node degradation (slow node). Both are keyed to deterministic
/// fleet-time points, so a node-kill storm is exactly reproducible run to
/// run — the property bench_fleet's bit-for-bit gate enforces.

namespace ghum::fault {

/// Whole-node loss at a fleet-time point: the superchip drops out of the
/// cluster without warning. Its in-flight machine state dies with it —
/// there is nothing to drain — so every job placed there either has a live
/// replica elsewhere (anti-affinity pays off), is replayed on a surviving
/// node under the bounded re-placement retry policy, or fails with
/// Status::kErrorNodeLost.
struct NodeLossEvent {
  sim::Picos time = 0;
  std::uint32_t node = 0;
};

/// Node degradation at a fleet-time point: the superchip keeps running but
/// every unit of its simulated work takes \p slow_factor times longer
/// (thermal throttling, a flapping NIC, a failing DIMM in write-leveling).
/// A degraded node accepts no new placements; with
/// FleetFaultConfig::evacuate_degraded set and a spare available, the
/// controller drains it by live migration — snapshot, ship, restore.
struct NodeDegradeEvent {
  sim::Picos time = 0;
  std::uint32_t node = 0;
  std::uint32_t slow_factor = 4;  ///< >= 1; 1 degrades placement only
};

/// A window of degraded inter-node fabric service — the fleet-level mirror
/// of the intra-node NVLink-C2C LinkDegradeWindow (fault_config.hpp): a
/// flapping NIC, a congested spine, a link renegotiating down a lane. For
/// the window's duration, every fabric message whose path touches the
/// named link has its modeled bandwidth divided and its fixed latencies
/// multiplied by the given factors. Windows are keyed to deterministic
/// fleet-time points, so dilation is exactly reproducible run to run.
struct LinkFlapWindow {
  sim::Picos start = 0;
  sim::Picos duration = 0;
  std::uint32_t node_a = 0;
  /// Second endpoint; kAllPeers degrades every link touching node_a (the
  /// single-NIC flap), a concrete id degrades just the {a, b} pair.
  std::uint32_t node_b = kAllPeers;
  double bandwidth_factor = 2.0;  ///< divide fabric bandwidths by this (>= 1)
  double latency_factor = 2.0;    ///< multiply fixed overheads by this (>= 1)

  static constexpr std::uint32_t kAllPeers = ~0u;
};

/// Deterministic fleet-level fault schedule consumed by fleet::Controller.
struct FleetFaultConfig {
  std::vector<NodeLossEvent> node_loss;
  std::vector<NodeDegradeEvent> node_degrade;
  std::vector<LinkFlapWindow> link_flap;

  /// Drain-and-migrate degraded nodes: the whole machine is serialized via
  /// chk::Snapshotter, charged at the fleet's inter-node transfer cost,
  /// and restored onto a spare superchip where every resident job
  /// continues mid-flight (replay equivalence, PR 5). When false — or when
  /// no spare is left — the degraded node keeps running slow and only
  /// stops receiving new work.
  bool evacuate_degraded = true;
};

}  // namespace ghum::fault
