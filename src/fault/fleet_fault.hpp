#pragma once

#include <cstdint>
#include <vector>

#include "fault/status.hpp"
#include "sim/time.hpp"

/// \file fleet_fault.hpp
/// Fleet-scale fault domains (DESIGN.md Section 11). Where FaultConfig
/// injects failures *inside* one simulated superchip (frame denials, link
/// degradation, ECC, channel resets), FleetFaultConfig injects failures of
/// *whole superchips* into a fleet::Controller: abrupt node loss and
/// node degradation (slow node). Both are keyed to deterministic
/// fleet-time points, so a node-kill storm is exactly reproducible run to
/// run — the property bench_fleet's bit-for-bit gate enforces.

namespace ghum::fault {

/// Whole-node loss at a fleet-time point: the superchip drops out of the
/// cluster without warning. Its in-flight machine state dies with it —
/// there is nothing to drain — so every job placed there either has a live
/// replica elsewhere (anti-affinity pays off), is replayed on a surviving
/// node under the bounded re-placement retry policy, or fails with
/// Status::kErrorNodeLost.
struct NodeLossEvent {
  sim::Picos time = 0;
  std::uint32_t node = 0;
};

/// Node degradation at a fleet-time point: the superchip keeps running but
/// every unit of its simulated work takes \p slow_factor times longer
/// (thermal throttling, a flapping NIC, a failing DIMM in write-leveling).
/// A degraded node accepts no new placements; with
/// FleetFaultConfig::evacuate_degraded set and a spare available, the
/// controller drains it by live migration — snapshot, ship, restore.
struct NodeDegradeEvent {
  sim::Picos time = 0;
  std::uint32_t node = 0;
  std::uint32_t slow_factor = 4;  ///< >= 1; 1 degrades placement only
};

/// A window of degraded inter-node fabric service — the fleet-level mirror
/// of the intra-node NVLink-C2C LinkDegradeWindow (fault_config.hpp): a
/// flapping NIC, a congested spine, a link renegotiating down a lane. For
/// the window's duration, every fabric message whose path touches the
/// named link has its modeled bandwidth divided and its fixed latencies
/// multiplied by the given factors. Windows are keyed to deterministic
/// fleet-time points, so dilation is exactly reproducible run to run.
struct LinkFlapWindow {
  sim::Picos start = 0;
  sim::Picos duration = 0;
  std::uint32_t node_a = 0;
  /// Second endpoint; kAllPeers degrades every link touching node_a (the
  /// single-NIC flap), a concrete id degrades just the {a, b} pair.
  std::uint32_t node_b = kAllPeers;
  double bandwidth_factor = 2.0;  ///< divide fabric bandwidths by this (>= 1)
  double latency_factor = 2.0;    ///< multiply fixed overheads by this (>= 1)

  static constexpr std::uint32_t kAllPeers = ~0u;
};

/// Message-level fabric faults: a seeded per-link schedule of
/// drop/corrupt/duplicate/reorder events applied inside net::Fabric's
/// datagram path. Every directed link owns an independent RNG stream
/// derived from (seed, link), so the fate sequence on one link depends
/// only on that link's own message order — the property that keeps a
/// chaos storm bit-for-bit reproducible even when traffic interleaves
/// differently across links. The reliability protocol knobs reuse the
/// PR 1 retry idiom: a bounded attempt budget whose ack timeout doubles
/// per retransmission.
struct MessageFaultConfig {
  /// Master switch. Off = the fabric never loses a message and the
  /// reliable send path degrades to one clean attempt (pre-PR-10 costs on
  /// the raw transfer path, bit-for-bit).
  bool enabled = false;
  std::uint64_t seed = 0x10553ull;

  // Per-message fate probabilities, drawn from the link's stream in a
  // fixed order (drop, corrupt, duplicate, reorder) for every datagram.
  double drop_prob = 0.0;       ///< lost in flight; never delivered
  double corrupt_prob = 0.0;    ///< delivered, link-level checksum fails
  double duplicate_prob = 0.0;  ///< delivered twice; receiver dedups
  double reorder_prob = 0.0;    ///< delivery delayed past the next message
  /// Extra delivery delay of a reordered datagram (its out-of-order hold
  /// in the receive queue).
  sim::Picos reorder_delay = sim::microseconds(5);

  // Reliable-delivery protocol (net::Fabric::send).
  std::uint64_t ack_bytes = 64;  ///< ack / NAK wire size on the reverse link
  /// Base ack timeout; attempt k waits ack_timeout * 2^(k-1) before
  /// retransmitting (the PR 1 migration retry/backoff idiom).
  sim::Picos ack_timeout = sim::microseconds(50);
  /// Retransmissions after the first attempt; exhaustion surfaces
  /// Status::kErrorRetransmitExhausted.
  std::uint32_t max_retransmits = 6;

  /// End-to-end corruption of bulk payloads: flips bytes *after* the link
  /// checksum verified (bounce-buffer / DMA corruption), so only
  /// receiver-side digest verification of the application payload catches
  /// it — the evacuation-blob integrity path. Drawn per successful bulk
  /// send (bytes >= bulk_threshold) from the link stream.
  double e2e_corrupt_prob = 0.0;
  /// Deterministic schedule: 0-based indexes (fabric-wide bulk-send
  /// order) whose payload arrives corrupted regardless of the draw.
  std::vector<std::uint64_t> e2e_corrupt_bulk;
  std::uint64_t bulk_threshold = 1ull << 20;

  /// kSuccess, or kErrorNetConfig on a probability outside [0, 1], a
  /// negative timeout/delay, or a zero ack size / bulk threshold.
  [[nodiscard]] Status validate() const noexcept {
    for (const double p :
         {drop_prob, corrupt_prob, duplicate_prob, reorder_prob,
          e2e_corrupt_prob}) {
      if (!(p >= 0.0 && p <= 1.0)) return Status::kErrorNetConfig;
    }
    if (reorder_delay < 0 || ack_timeout <= 0) return Status::kErrorNetConfig;
    if (ack_bytes == 0 || bulk_threshold == 0) return Status::kErrorNetConfig;
    return Status::kSuccess;
  }
};

/// Deterministic fleet-level fault schedule consumed by fleet::Controller.
struct FleetFaultConfig {
  std::vector<NodeLossEvent> node_loss;
  std::vector<NodeDegradeEvent> node_degrade;
  std::vector<LinkFlapWindow> link_flap;
  MessageFaultConfig messages;

  /// Drain-and-migrate degraded nodes: the whole machine is serialized via
  /// chk::Snapshotter, charged at the fleet's inter-node transfer cost,
  /// and restored onto a spare superchip where every resident job
  /// continues mid-flight (replay equivalence, PR 5). When false — or when
  /// no spare is left — the degraded node keeps running slow and only
  /// stops receiving new work.
  bool evacuate_degraded = true;
};

}  // namespace ghum::fault
