#pragma once

#include <cstdint>
#include <vector>

#include "core/machine.hpp"
#include "fault/fault_config.hpp"
#include "sim/rng.hpp"

/// \file fault_injector.hpp
/// Deterministic fault injection for the memory system. One injector per
/// core::System, seeded from FaultConfig::seed; probability draws consume
/// its private Rng in the (single-threaded, deterministic) order the call
/// sites execute, and time-scheduled faults fire when the simulated clock
/// passes them — so an injected run is exactly as reproducible as a clean
/// one. Injection points:
///  - core::Machine::map_* / move_*: transient frame-allocation denials;
///  - driver::MigrationEngine::batch_with_retry: migration-batch failures
///    with bounded, backoff-charged retries;
///  - a clock observer: NVLink-C2C degradation windows;
///  - core::System::service_faults: ECC frame retirement with remap.
/// Resilience responses (eviction writeback, fallback placement) run under
/// ScopedSuppress so the cure is never re-injected with the disease.

namespace ghum::chk {
class Snapshotter;
}  // namespace ghum::chk

namespace ghum::fault {

class FaultInjector {
 public:
  explicit FaultInjector(core::Machine& m);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return cfg_.enabled; }

  // --- call-site probability draws -----------------------------------------
  /// Transient frame-allocation denial for \p node. Records the event and
  /// counts the stat when it fires. Never fires while suppressed.
  [[nodiscard]] bool deny_frame_alloc(mem::Node node);

  /// One migration-batch failure draw (retry policy lives in the
  /// MigrationEngine, which charges the simulated backoff).
  [[nodiscard]] bool fail_migration_batch();

  // --- suppression (resilience paths are exempt from injection) ------------
  [[nodiscard]] bool suppressed() const noexcept { return suppress_ > 0; }

  /// RAII exemption; tolerates a null injector so callers need no checks.
  class ScopedSuppress {
   public:
    explicit ScopedSuppress(FaultInjector* fi) noexcept : fi_(fi) {
      if (fi_ != nullptr) ++fi_->suppress_;
    }
    ~ScopedSuppress() {
      if (fi_ != nullptr) --fi_->suppress_;
    }
    ScopedSuppress(const ScopedSuppress&) = delete;
    ScopedSuppress& operator=(const ScopedSuppress&) = delete;

   private:
    FaultInjector* fi_;
  };

  // --- NVLink-C2C degradation windows (clock-driven) ------------------------
  [[nodiscard]] bool has_link_windows() const noexcept { return !windows_.empty(); }

  /// Clock-observer hook: enters/leaves degradation windows as simulated
  /// time passes their boundaries. Only flips link state and records
  /// events — never advances the clock (safe inside an observer).
  void on_time_advance(sim::Picos now);

  // --- ECC schedule ----------------------------------------------------------
  /// True when an ECC event is due at or before \p now (cheap pre-check).
  [[nodiscard]] bool ecc_due(sim::Picos now) const noexcept {
    return next_ecc_ < ecc_.size() && ecc_[next_ecc_].time <= now;
  }
  /// Consumes and returns the next due ECC event, or nullptr.
  [[nodiscard]] const EccEvent* take_due_ecc(sim::Picos now) {
    if (!ecc_due(now)) return nullptr;
    return &ecc_[next_ecc_++];
  }

  // --- GPU channel-reset schedule (crash fault class) ------------------------
  /// True when a GPU reset is due at or before \p now.
  [[nodiscard]] bool reset_due(sim::Picos now) const noexcept {
    return next_reset_ < resets_.size() && resets_[next_reset_].time <= now;
  }
  /// Consumes and returns the next due GPU reset, or nullptr. The cursor
  /// only ever advances — a restore never rewinds it, so a restarted job
  /// does not deterministically re-crash on the same scheduled reset.
  [[nodiscard]] const GpuResetEvent* take_due_reset(sim::Picos now) {
    if (!reset_due(now)) return nullptr;
    return &resets_[next_reset_++];
  }

  // --- lifetime counters -----------------------------------------------------
  [[nodiscard]] std::uint64_t denials() const noexcept { return denials_; }

 private:
  core::Machine* m_;
  FaultConfig cfg_;
  sim::Rng rng_;
  int suppress_ = 0;

  std::vector<LinkDegradeWindow> windows_;  ///< sorted by start
  std::size_t next_window_ = 0;
  std::ptrdiff_t active_window_ = -1;

  std::vector<EccEvent> ecc_;  ///< sorted by time
  std::size_t next_ecc_ = 0;

  std::vector<GpuResetEvent> resets_;  ///< sorted by time
  std::size_t next_reset_ = 0;

  std::uint64_t denials_ = 0;

  friend class ghum::chk::Snapshotter;
};

}  // namespace ghum::fault
