#!/usr/bin/env sh
# Reproduces everything: build, full test suite, every paper table/figure
# bench, and the examples. Results land in test_output.txt /
# bench_output.txt (see EXPERIMENTS.md for the paper-vs-measured reading).
set -eu

cmake -B build -S . -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

# Sanitized pass (ASan + UBSan): the whole test suite again, instrumented.
# Benches and examples are skipped here — they rerun the same simulator
# paths the tests cover, just for longer.
cmake -B build-asan -S . -G Ninja -DGHUM_SANITIZE=ON \
  -DGHUM_BUILD_BENCH=OFF -DGHUM_BUILD_EXAMPLES=OFF
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure 2>&1 | tee test_output_asan.txt

{
  for b in build/bench/bench_*; do
    echo "===== $b ====="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

# Self-checking benches (run in the loop above) exit nonzero on failure:
# bench_selfperf if the batched and legacy access paths diverge,
# bench_tenancy if a co-run row is non-reproducible or the designated
# interference row shows no cross-tenant eviction, bench_observability if
# any registry counter disagrees with the Tracer or a snapshot fails to
# reproduce, bench_recovery if an interrupted run diverges from its
# uninterrupted twin or a crash scenario ends in the wrong state,
# bench_fleet if the node-kill storm is non-reproducible, a surviving
# job's checksum diverges from its solo run, or the top SLO class takes
# any violation, bench_netscope if fewer than three network protocol
# regimes appear, protocol selection is non-monotone in message size, or
# any 2/4/8-node halo cell fails bit-for-bit reproduction,
# bench_fleetscope if alert firings are not bit-for-bit identical across
# two observed storms, the federated registry disagrees with the
# per-node sums, or no root span crosses a node boundary,
# bench_chaosnet if the storm on a lossy fabric is non-reproducible, no
# retransmission recovered a send, a silent node death goes undetected
# (or a live node is declared dead), the corrupted evacuation blob is
# not recovered, or the top SLO class takes a violation. Every bench
# that declares a JSON artifact must have produced it.
for artifact in BENCH_selfperf.json BENCH_tenancy.json \
                BENCH_observability.json BENCH_recovery.json \
                BENCH_fleet.json BENCH_netscope.json \
                BENCH_fleetscope.json BENCH_chaosnet.json; do
  test -f "$artifact" || { echo "missing artifact: $artifact" >&2; exit 1; }
done

# Absolute simulator-throughput gate + full-scale smoke: fails if simulated
# events/sec (or full-scale pages/sec) drops more than 20% below the
# recorded baseline, if the full-scale address space fragments past 64
# extents, or if host RSS grows with the 128 GiB simulated footprint.
./build/bench/bench_selfperf --smoke \
  --check bench/selfperf_baseline.json \
  --gate-throughput bench/selfperf_baseline.json \
  --out BENCH_selfperf_gate.json \
  --fullscale-out BENCH_selfperf_fullscale.json
test -f BENCH_selfperf_fullscale.json || {
  echo "missing artifact: BENCH_selfperf_fullscale.json" >&2; exit 1;
}

# Sample enriched Chrome trace (README "Observability"): Figure 4's
# managed run with event log, causal spans and the C2C utilization track.
./build/bench/bench_fig04_hotspot_profile --trace trace_hotspot_managed.json \
  > /dev/null
test -s trace_hotspot_managed.json || {
  echo "missing artifact: trace_hotspot_managed.json" >&2; exit 1;
}

# Fleet trace (README "Fleet-wide observability"): written by the
# bench_fleetscope run in the loop above — node process lanes, flow
# arrows crossing machines, link-flap duration events.
test -s trace_fleetscope.json || {
  echo "missing artifact: trace_fleetscope.json" >&2; exit 1;
}

for e in quickstart all_apps quantum_volume oversubscription_survival \
         migration_explorer; do
  echo "===== examples/$e ====="
  "./build/examples/$e"
  echo
done
