#!/usr/bin/env sh
# Reproduces everything: build, full test suite, every paper table/figure
# bench, and the examples. Results land in test_output.txt /
# bench_output.txt (see EXPERIMENTS.md for the paper-vs-measured reading).
set -eu

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

{
  for b in build/bench/bench_*; do
    echo "===== $b ====="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

for e in quickstart all_apps quantum_volume oversubscription_survival \
         migration_explorer; do
  echo "===== examples/$e ====="
  "./build/examples/$e"
  echo
done
