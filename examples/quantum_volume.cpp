// Quantum Volume end-to-end walkthrough: simulate a QV circuit at a chosen
// qubit count under any of the three memory-management styles, print the
// per-phase breakdown, the per-gate kernel table (Nsight-Compute-style
// Memory Workload Analysis), and the memory-usage time series.
//
// Usage: quantum_volume [qubits] [explicit|managed|system] [4k|64k]
// Defaults: 16 qubits, system memory, 64k pages.

#include <cstdio>
#include <cstring>

#include <fstream>

#include "apps/qvsim.hpp"
#include "benchsupport/scenarios.hpp"
#include "profile/trace_export.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

int main(int argc, char** argv) {
  using namespace ghum;
  namespace bs = benchsupport;

  std::uint32_t qubits = 16;
  apps::MemMode mode = apps::MemMode::kSystem;
  std::uint64_t page = pagetable::kSystemPage64K;
  if (argc > 1) qubits = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) {
    if (std::strcmp(argv[2], "explicit") == 0) mode = apps::MemMode::kExplicit;
    if (std::strcmp(argv[2], "managed") == 0) mode = apps::MemMode::kManaged;
  }
  if (argc > 3 && std::strcmp(argv[3], "4k") == 0) page = pagetable::kSystemPage4K;
  if (qubits < 2 || qubits > 26) {
    std::fprintf(stderr, "qubits must be in [2, 26]\n");
    return 1;
  }

  core::SystemConfig cfg = bs::qv_config(page, false);
  cfg.profiler_enabled = true;
  cfg.event_log = true;
  core::System sys{cfg};
  runtime::Runtime rt{sys};

  const double sv_mib = static_cast<double>(16ull << qubits) / (1 << 20);
  std::printf("Quantum Volume: %u qubits (%.1f MiB statevector, %.0f%% of "
              "HBM), %s memory, %llu KiB pages\n\n",
              qubits, sv_mib,
              100.0 * sv_mib / (static_cast<double>(cfg.hbm_capacity) / (1 << 20)),
              std::string{to_string(mode)}.c_str(),
              static_cast<unsigned long long>(page >> 10));

  const auto report =
      apps::run_qvsim(rt, mode, bs::qv_sim_config(bs::Scale::kDefault, qubits));

  std::printf("phases: ctx=%.3f ms alloc=%.3f ms gpu_init=%.3f ms "
              "compute=%.3f ms dealloc=%.3f ms\n",
              report.times.context_s * 1e3, report.times.alloc_s * 1e3,
              report.times.gpu_init_s * 1e3, report.times.compute_s * 1e3,
              report.times.dealloc_s * 1e3);
  std::printf("statevector checksum: %016llx (unitarity-preserving)\n\n",
              static_cast<unsigned long long>(report.checksum));

  std::printf("-- kernel workload analysis (first 12 kernels) --\n%s\n",
              sys.workload().to_table().substr(0, 1400).c_str());

  profile::Tracer tracer{sys.events()};
  const auto s = tracer.summarize();
  std::printf("events: gpu_first_touch=%zu managed_faults=%zu evictions=%zu "
              "migr_h2d=%.1f MiB\n",
              s.gpu_first_touch_faults, s.managed_gpu_faults, s.evictions,
              static_cast<double>(s.migrated_h2d_bytes) / (1 << 20));
  std::printf("peak gpu used: %.1f MiB, peak cpu rss: %.1f MiB\n",
              static_cast<double>(sys.profiler().peak_gpu_used()) / (1 << 20),
              static_cast<double>(sys.profiler().peak_cpu_rss()) / (1 << 20));

  // Timeline export: open in chrome://tracing or https://ui.perfetto.dev.
  std::ofstream trace{"qv_trace.json"};
  trace << profile::to_chrome_trace(sys.events(), sys.workload());
  std::printf("timeline written to qv_trace.json (chrome://tracing)\n");
  return 0;
}
