// Runs all six applications of paper Table 2 in the three memory versions
// at the default (bench) scale and prints the full phase table — a compact
// view of the paper's Figure 3 landscape plus per-app checksum validation.

#include <chrono>
#include <cstdio>

#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "runtime/runtime.hpp"

int main() {
  using namespace ghum;
  namespace bs = benchsupport;

  bs::print_report_table_header();
  for (const auto& app : bs::rodinia_apps()) {
    std::uint64_t checksums[3];
    int i = 0;
    for (apps::MemMode mode : {apps::MemMode::kExplicit, apps::MemMode::kManaged,
                               apps::MemMode::kSystem}) {
      const auto wall0 = std::chrono::steady_clock::now();
      core::System sys{bs::rodinia_config(pagetable::kSystemPage64K, false)};
      runtime::Runtime rt{sys};
      const apps::AppReport r = app.run(rt, mode, bs::Scale::kDefault);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
              .count();
      bs::print_report_row(r);
      std::printf("  host wall: %.2fs\n", wall);
      checksums[i++] = r.checksum;
    }
    if (checksums[0] != checksums[1] || checksums[1] != checksums[2]) {
      std::printf("!! %s: CHECKSUM MISMATCH ACROSS MODES\n", app.name.c_str());
      return 1;
    }
  }

  // Quantum Volume at an in-memory size.
  for (apps::MemMode mode : {apps::MemMode::kExplicit, apps::MemMode::kManaged,
                             apps::MemMode::kSystem}) {
    const auto wall0 = std::chrono::steady_clock::now();
    core::System sys{bs::qv_config(pagetable::kSystemPage64K, false)};
    runtime::Runtime rt{sys};
    const apps::AppReport r =
        apps::run_qvsim(rt, mode, bs::qv_sim_config(bs::Scale::kDefault, 18));
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();
    bs::print_report_row(r);
    std::printf("  host wall: %.2fs\n", wall);
  }
  return 0;
}
