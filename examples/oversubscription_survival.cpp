// Oversubscription survival: how the two unified-memory flavours behave
// when the working set exceeds GPU memory (paper Section 7).
//
// The example shrinks free GPU memory with a dummy cudaMalloc (the paper's
// simulated-oversubscription rig) and runs hotspot under both unified
// flavours at increasing pressure, tracing evictions and migrations. Watch
// how the system version never evicts — it simply leaves data CPU-resident
// and reads it over NVLink-C2C — while the managed version churns.

#include <cstdio>

#include "apps/hotspot.hpp"
#include "benchsupport/scenarios.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

int main() {
  using namespace ghum;
  namespace bs = benchsupport;

  std::printf("oversubscription survival: hotspot under GPU memory pressure\n\n");
  std::printf("%-9s %-8s %12s %10s %12s %12s %12s\n", "mode", "ratio",
              "compute_ms", "evictions", "evict_mib", "migr_h2d_mib",
              "c2c_read_mib");

  const auto app_cfg = bs::hotspot_config(bs::Scale::kDefault);
  // Peak GPU footprint of the managed version, measured in-memory.
  const std::uint64_t peak = bs::measure_peak_gpu(
      bs::rodinia_config(pagetable::kSystemPage4K, false),
      [&](runtime::Runtime& rt) {
        return apps::run_hotspot(rt, apps::MemMode::kManaged, app_cfg);
      });

  for (apps::MemMode mode : {apps::MemMode::kManaged, apps::MemMode::kSystem}) {
    for (double ratio : {1.0, 1.5, 2.0, 4.0}) {
      core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage4K, false);
      cfg.event_log = true;
      core::System sys{cfg};
      runtime::Runtime rt{sys};
      auto reserve = bs::reserve_for_oversubscription(sys, peak, ratio);
      const auto result = bs::guarded_run(
          [&] { return apps::run_hotspot(rt, mode, app_cfg); });
      if (!result.ok()) {
        // At extreme ratios even the cudaMalloc'd ping-pong intermediate no
        // longer fits — exactly how the run would die on the real machine.
        std::printf("%-9s %-8.2f FAILED: %s\n",
                    std::string{to_string(mode)}.c_str(), ratio,
                    std::string{to_string(result.status)}.c_str());
        continue;
      }
      const apps::AppReport& report = result.report;
      profile::Tracer tracer{sys.events()};
      const auto s = tracer.summarize();
      std::printf("%-9s %-8.2f %12.3f %10zu %12.2f %12.2f %12.2f\n",
                  std::string{to_string(mode)}.c_str(), ratio,
                  report.times.compute_s * 1e3, s.evictions,
                  static_cast<double>(s.evicted_bytes) / (1 << 20),
                  static_cast<double>(s.migrated_h2d_bytes) / (1 << 20),
                  static_cast<double>(report.compute_traffic.c2c_read_bytes) /
                      (1 << 20));
      if (reserve) rt.free(*reserve);
    }
  }
  std::printf("\nExpected: managed evicts under pressure; system shows zero "
              "evictions and rising C2C reads instead.\n");
  return 0;
}
