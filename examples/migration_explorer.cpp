// Migration explorer: watch the access-counter-based migration engine
// (paper Section 2.2.1 / Section 6) at work on a synthetic hot/cold
// workload. A GPU kernel repeatedly sweeps a *hot* half of a system
// allocation while touching the *cold* half only once; the access counters
// migrate the hot half toward GPU memory round by round — the per-round
// table below is the same three-phase picture as the paper's Figure 10 —
// while the cold half stays CPU-resident.

#include <cstdio>

#include "benchsupport/scenarios.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

int main() {
  using namespace ghum;
  namespace bs = benchsupport;

  constexpr std::uint64_t kBytes = 32ull << 20;  // 16 MiB hot + 16 MiB cold
  constexpr std::uint64_t kFloats = kBytes / sizeof(float);
  constexpr int kRounds = 10;

  core::SystemConfig cfg = bs::rodinia_config(pagetable::kSystemPage64K, true);
  cfg.event_log = true;
  core::System sys{cfg};
  runtime::Runtime rt{sys};
  sys.ensure_gpu_context();  // keep context init out of the round timings

  core::Buffer buf = rt.malloc_system(kBytes, "hotcold");
  (void)rt.host_phase("init", 0, [&] {
    auto s = rt.host_span<float>(buf);
    for (std::uint64_t i = 0; i < kFloats; ++i) s.store(i, 1.0f);
  });

  std::printf("migration explorer: 16 MiB hot + 16 MiB cold halves of one "
              "malloc'd buffer, %d GPU sweeps of the hot half\n\n",
              kRounds);
  std::printf("%-6s %10s %14s %14s %14s\n", "round", "time_us", "c2c_read_mib",
              "hbm_read_mib", "migrated_mib");
  for (int round = 0; round < kRounds; ++round) {
    const sim::Picos t0 = sys.now();
    auto rec = rt.launch("sweep", 0, [&] {
      auto s = rt.device_span<float>(buf);
      for (std::uint64_t i = 0; i < kFloats / 2; ++i) (void)s.load(i);
      if (round == 0) {
        // Cold half: one sparse pass, far below the migration threshold.
        for (std::uint64_t i = kFloats / 2; i < kFloats; i += 4096) {
          (void)s.load(i);
        }
      }
    });
    std::printf("%-6d %10.1f %14.2f %14.2f %14.2f\n", round,
                sim::to_microseconds(sys.now() - t0),
                static_cast<double>(rec.traffic.c2c_read_bytes) / (1 << 20),
                static_cast<double>(rec.traffic.hbm_read_bytes) / (1 << 20),
                static_cast<double>(rec.traffic.migration_h2d_bytes) / (1 << 20));
  }

  // Where did the halves end up?
  auto& pt = sys.machine().system_pt();
  std::uint64_t hot_gpu = 0, cold_gpu = 0;
  for (std::uint64_t off = 0; off < kBytes; off += pt.page_size()) {
    const auto* pte = pt.lookup(buf.va + off);
    if (pte == nullptr || pte->node != mem::Node::kGpu) continue;
    (off < kBytes / 2 ? hot_gpu : cold_gpu) += pt.page_size();
  }
  profile::Tracer tracer{sys.events()};
  std::printf("\nresidency: hot half %.1f/16 MiB on GPU, cold half %.1f/16 MiB "
              "on GPU, %zu notifications\n",
              static_cast<double>(hot_gpu) / (1 << 20),
              static_cast<double>(cold_gpu) / (1 << 20),
              tracer.summarize().counter_notifications);
  std::printf("Expected: C2C reads fall and HBM reads rise round by round for "
              "the hot half; the cold half never migrates.\n");
  rt.free(buf);
  return 0;
}
