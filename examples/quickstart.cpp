// Quickstart: simulate one Grace Hopper node, port an app to the three
// memory-management styles of the paper (explicit copy / CUDA managed /
// system-allocated), and compare their phase timings.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "apps/hotspot.hpp"
#include "benchsupport/report.hpp"
#include "benchsupport/scenarios.hpp"
#include "core/system.hpp"
#include "profile/tracer.hpp"
#include "runtime/runtime.hpp"

int main() {
  using namespace ghum;

  std::printf("ghum quickstart: hotspot under three memory management styles\n\n");
  benchsupport::print_report_table_header();

  for (apps::MemMode mode : {apps::MemMode::kExplicit, apps::MemMode::kManaged,
                             apps::MemMode::kSystem}) {
    // One fresh simulated node per run: 64 KiB system pages, access-counter
    // migration off (the paper's Figure 3 setup).
    core::SystemConfig cfg = benchsupport::rodinia_config(
        pagetable::kSystemPage64K, /*access_counters=*/false);
    cfg.event_log = true;
    core::System sys{cfg};
    runtime::Runtime rt{sys};

    apps::HotspotConfig app = benchsupport::hotspot_config(benchsupport::Scale::kSmall);
    apps::AppReport report = apps::run_hotspot(rt, mode, app);
    benchsupport::print_report_row(report);

    profile::Tracer tracer{sys.events()};
    const auto s = tracer.summarize();
    std::printf("  events: cpu_faults=%zu gpu_faults=%zu managed_faults=%zu "
                "migrations(h2d=%zu, d2h=%zu) checksum=%016llx\n",
                s.cpu_first_touch_faults, s.gpu_first_touch_faults,
                s.managed_gpu_faults, s.migrations_h2d, s.migrations_d2h,
                static_cast<unsigned long long>(report.checksum));
  }

  const auto ref = apps::hotspot_reference_checksum(
      benchsupport::hotspot_config(benchsupport::Scale::kSmall));
  std::printf("\nreference checksum: %016llx (all three runs must match)\n",
              static_cast<unsigned long long>(ref));
  return 0;
}
